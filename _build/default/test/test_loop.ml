open Cf_loop
open Testutil

let affine = Alcotest.testable Affine.pp Affine.equal

let affine_cases =
  [
    Alcotest.test_case "canonical form" `Quick (fun () ->
        Alcotest.check affine "i + i = 2i"
          (Affine.term 2 "i")
          (Affine.add (Affine.var "i") (Affine.var "i"));
        Alcotest.check affine "i - i = 0" Affine.zero
          (Affine.sub (Affine.var "i") (Affine.var "i"));
        check_bool "const" true (Affine.is_constant (Affine.const 3)));
    Alcotest.test_case "coeff and eval" `Quick (fun () ->
        let e =
          Affine.add
            (Affine.add (Affine.term 2 "i") (Affine.term (-1) "j"))
            (Affine.const 5)
        in
        check_int "coeff i" 2 (Affine.coeff e "i");
        check_int "coeff missing" 0 (Affine.coeff e "k");
        check_int "const" 5 (Affine.constant_part e);
        check_int "eval" 10
          (Affine.eval (function "i" -> 3 | "j" -> 1 | _ -> 0) e));
    Alcotest.test_case "coeff_vector" `Quick (fun () ->
        let e = Affine.add (Affine.term 2 "i") (Affine.const (-1)) in
        let v, c = Affine.coeff_vector [| "i"; "j" |] e in
        Alcotest.check Alcotest.(array int) "coeffs" [| 2; 0 |] v;
        check_int "const" (-1) c;
        Alcotest.check_raises "unknown var"
          (Invalid_argument "Affine.coeff_vector: unknown variable k")
          (fun () ->
            ignore (Affine.coeff_vector [| "i" |] (Affine.var "k"))));
    Alcotest.test_case "substitute" `Quick (fun () ->
        let e = Affine.add (Affine.term 2 "i") (Affine.var "j") in
        let s =
          Affine.substitute
            (function
              | "i" -> Some (Affine.add (Affine.var "j") (Affine.const 1))
              | _ -> None)
            e
        in
        Alcotest.check affine "2(j+1) + j"
          (Affine.add (Affine.term 3 "j") (Affine.const 2))
          s);
    Alcotest.test_case "printing" `Quick (fun () ->
        check_string "mix" "2*i - j + 1"
          (Affine.to_string
             (Affine.add
                (Affine.add (Affine.term 2 "i") (Affine.term (-1) "j"))
                (Affine.const 1)));
        check_string "const only" "-3" (Affine.to_string (Affine.const (-3)));
        check_string "leading neg" "-i + 2"
          (Affine.to_string (Affine.add (Affine.term (-1) "i") (Affine.const 2))));
  ]

let aref_cases =
  [
    Alcotest.test_case "matrix extraction (L1)" `Quick (fun () ->
        let r =
          Aref.make "A"
            [ Affine.term 2 "i";
              Affine.add (Affine.var "j") (Affine.const (-1)) ]
        in
        let h, c = Aref.matrix [| "i"; "j" |] r in
        Alcotest.check
          Alcotest.(array (array int))
          "H" [| [| 2; 0 |]; [| 0; 1 |] |] h;
        Alcotest.check Alcotest.(array int) "offset" [| 0; -1 |] c);
    Alcotest.test_case "eval" `Quick (fun () ->
        let r = Aref.make "A" [ Affine.term 2 "i"; Affine.var "j" ] in
        Alcotest.check
          Alcotest.(array int)
          "at (3,4)" [| 6; 4 |]
          (Aref.eval (function "i" -> 3 | _ -> 4) r));
  ]

let nest_cases =
  [
    Alcotest.test_case "validation" `Quick (fun () ->
        let stmt =
          Stmt.make (Aref.make "A" [ Affine.var "i" ]) (Expr.Const 0)
        in
        check_bool "ok" true
          (ignore (Nest.rectangular [ ("i", 1, 3) ] [ stmt ]); true);
        Alcotest.check_raises "duplicate index"
          (Invalid_argument "Nest.make: duplicate index i") (fun () ->
            ignore (Nest.rectangular [ ("i", 1, 3); ("i", 1, 3) ] [ stmt ]));
        Alcotest.check_raises "empty body"
          (Invalid_argument "Nest.make: empty body") (fun () ->
            ignore (Nest.rectangular [ ("i", 1, 3) ] [])));
    Alcotest.test_case "bound scoping" `Quick (fun () ->
        let stmt =
          Stmt.make (Aref.make "A" [ Affine.var "i" ]) (Expr.Const 0)
        in
        (* j's bound may use i, not vice versa. *)
        let ok =
          Nest.make
            [ { Nest.var = "i"; lower = Affine.const 1; upper = Affine.const 3 };
              { Nest.var = "j"; lower = Affine.var "i"; upper = Affine.const 3 } ]
            [ stmt ]
        in
        check_int "depth" 2 (Nest.depth ok);
        Alcotest.check_raises "inner in outer bound"
          (Invalid_argument "Nest.make: bound of i mentions non-outer index j")
          (fun () ->
            ignore
              (Nest.make
                 [ { Nest.var = "i"; lower = Affine.var "j";
                     upper = Affine.const 3 };
                   { Nest.var = "j"; lower = Affine.const 1;
                     upper = Affine.const 3 } ]
                 [ stmt ])));
    Alcotest.test_case "iteration enumeration" `Quick (fun () ->
        check_int "L1 card" 16 (Nest.cardinal l1);
        check_int "L4 card" 64 (Nest.cardinal l4);
        let triangle =
          Nest.make
            [ { Nest.var = "i"; lower = Affine.const 1; upper = Affine.const 3 };
              { Nest.var = "j"; lower = Affine.var "i"; upper = Affine.const 3 } ]
            [ Stmt.make (Aref.make "A" [ Affine.var "i" ]) (Expr.Const 0) ]
        in
        check_int "triangle card" 6 (Nest.cardinal triangle);
        let iters = Nest.iterations triangle in
        check_bool "lex order" true
          (iters = List.sort compare iters));
    Alcotest.test_case "uniformly generated references" `Quick (fun () ->
        check_bool "L1 all uniform" true (Nest.all_uniformly_generated l1);
        Alcotest.check
          Alcotest.(array (array int))
          "L1 H_A" [| [| 2; 0 |]; [| 0; 1 |] |] (Nest.h_matrix l1 "A");
        Alcotest.check
          Alcotest.(array (array int))
          "L1 H_B" [| [| 0; 1 |]; [| 1; 0 |] |] (Nest.h_matrix l1 "B");
        Alcotest.check
          Alcotest.(array (array int))
          "L2 H_A" [| [| 1; 1 |]; [| 1; 1 |] |] (Nest.h_matrix l2 "A");
        let bad =
          Nest.rectangular
            [ ("i", 1, 3) ]
            [ Stmt.make
                (Aref.make "A" [ Affine.term 2 "i" ])
                (Expr.Read (Aref.make "A" [ Affine.var "i" ])) ]
        in
        check_bool "non-uniform detected" false (Nest.uniformly_generated bad "A"));
    Alcotest.test_case "sites and refs" `Quick (fun () ->
        let sites = Nest.sites_of_array l1 "A" in
        check_int "A sites" 2 (List.length sites);
        check_int "A distinct refs" 2 (List.length (Nest.distinct_refs l1 "A"));
        check_int "C distinct refs" 2 (List.length (Nest.distinct_refs l1 "C"));
        Alcotest.check Alcotest.(list string) "arrays sorted"
          [ "A"; "B"; "C" ] (Nest.arrays l1));
    Alcotest.test_case "extent halfwidths" `Quick (fun () ->
        Alcotest.check Alcotest.(array int) "L1" [| 3; 3 |]
          (Nest.extent_halfwidths l1);
        Alcotest.check Alcotest.(array int) "L4" [| 3; 3; 3 |]
          (Nest.extent_halfwidths l4));
  ]

let parse_cases =
  [
    Alcotest.test_case "labels and structure" `Quick (fun () ->
        check_int "L1 two statements" 2 (List.length l1.Nest.body);
        (match l1.Nest.body with
         | [ s1; s2 ] ->
           check_string "label S1" "S1" s1.Stmt.label;
           check_string "label S2" "S2" s2.Stmt.label
         | _ -> Alcotest.fail "body shape"));
    Alcotest.test_case "comments and assignment forms" `Quick (fun () ->
        let t =
          Parse.nest
            "for i = 1 to 2 # a comment\n  A[i] = 3; // trailing\nend"
        in
        check_int "depth" 1 (Nest.depth t));
    Alcotest.test_case "affine bound expressions" `Quick (fun () ->
        let t = Parse.nest "for i = 1 to 4\nfor j = i to 2*i + 1\nA[i, j] := 0;\nend\nend" in
        check_bool "non-rectangular" false (Nest.is_rectangular t);
        (* j runs i..2i+1: 3 + 4 + 5 + 6 iterations. *)
        check_int "cardinal" 18 (Nest.cardinal t));
    Alcotest.test_case "errors carry line numbers" `Quick (fun () ->
        let expect_err src =
          match Parse.nest src with
          | exception Parse.Error msg ->
            check_bool "mentions line" true
              (String.length msg > 5 && String.sub msg 0 4 = "line")
          | _ -> Alcotest.fail "expected parse error"
        in
        expect_err "for i = 1 to\nA[i] := 0;\nend";
        expect_err "for i = 1 to 3\nA[i] := ;\nend";
        expect_err "for i = 1 to 3\nA[i*j] := 0;\nend";
        expect_err "for i = 1 to 3\nA[i] := 0;\nend trailing");
    Alcotest.test_case "scalars vs indices" `Quick (fun () ->
        let t = Parse.nest "for i = 1 to 2\nA[i] := D + i;\nend" in
        (match t.Nest.body with
         | [ s ] ->
           (match s.Stmt.rhs with
            | Expr.Binop (Expr.Add, Expr.Scalar "D", Expr.Index "i") -> ()
            | _ -> Alcotest.fail "expected D scalar and i index")
         | _ -> Alcotest.fail "one statement"));
    Alcotest.test_case "array declarations" `Quick (fun () ->
        let t =
          Parse.nest
            "array A[0:8, -2:4];\nfor i = 1 to 4\nA[2*i, i - 3] := 1;\nend"
        in
        (match Nest.declared_bounds t "A" with
         | Some [| (0, 8); (-2, 4) |] -> ()
         | _ -> Alcotest.fail "declaration not recorded");
        Alcotest.check Alcotest.(option (array (pair int int))) "undeclared"
          None
          (Nest.declared_bounds t "B");
        check_bool "all accesses inside" true
          (Nest.out_of_bounds_accesses t = []);
        let tight =
          Parse.nest
            "array A[0:4, 0:4];\nfor i = 1 to 4\nA[2*i, i] := 1;\nend"
        in
        check_bool "A[6,3], A[8,4] flagged" true
          (List.length (Nest.out_of_bounds_accesses tight) = 2);
        (* Declarations survive the pretty-printer round trip. *)
        let t' = Parse.nest (Format.asprintf "@[<v>%a@]" Nest.pp t) in
        check_bool "roundtrip" true
          (Nest.declared_bounds t' "A" = Nest.declared_bounds t "A");
        (* Validation. *)
        (match
           Parse.nest "array A[4:0];\nfor i = 1 to 2\nA[i] := 1;\nend"
         with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "empty range must be rejected");
        (match
           Parse.nest "array A[0:9, 0:9];\nfor i = 1 to 2\nA[i] := 1;\nend"
         with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "arity mismatch must be rejected"));
    Alcotest.test_case "declarations scope over programs" `Quick (fun () ->
        let nests =
          Parse.program
            "array A[0:9];\nfor i = 1 to 2\nA[i] := 1;\nend\n\
             for j = 1 to 3\nB[j] := A[j];\nend"
        in
        (match nests with
         | [ a; b ] ->
           check_bool "first sees A" true (Nest.declared_bounds a "A" <> None);
           check_bool "second inherits A" true
             (Nest.declared_bounds b "A" <> None);
           check_bool "B undeclared" true (Nest.declared_bounds b "B" = None)
         | _ -> Alcotest.fail "two nests"));
    Alcotest.test_case "program parsing" `Quick (fun () ->
        let nests =
          Parse.program
            "for i = 1 to 2\nA[i] := 1;\nend\nfor j = 1 to 3\nB[j] := A[j];\nend"
        in
        check_int "two nests" 2 (List.length nests);
        (match nests with
         | [ a; b ] ->
           check_int "first card" 2 (Nest.cardinal a);
           check_int "second card" 3 (Nest.cardinal b)
         | _ -> Alcotest.fail "shape");
        check_int "single nest program" 1
          (List.length (Parse.program "for i = 1 to 2\nA[i] := 1;\nend"));
        (match Parse.program "" with
         | exception Parse.Error _ -> ()
         | _ -> Alcotest.fail "empty program must fail");
        (match Parse.program "for i = 1 to 2\nA[i] := 1;\nend garbage" with
         | exception Parse.Error _ -> ()
         | _ -> Alcotest.fail "trailing garbage must fail"));
    Alcotest.test_case "pp/reparse roundtrip" `Quick (fun () ->
        List.iter
          (fun (name, t) ->
            let printed = Format.asprintf "@[<v>%a@]" Nest.pp t in
            let t' = Parse.nest printed in
            Alcotest.(check int)
              (name ^ " same cardinal")
              (Nest.cardinal t) (Nest.cardinal t');
            Alcotest.(check (list string))
              (name ^ " same arrays")
              (Nest.arrays t) (Nest.arrays t'))
          all_paper_loops);
  ]

let expr_cases =
  [
    Alcotest.test_case "eval with precedence" `Quick (fun () ->
        let e =
          Expr.Binop
            ( Expr.Add,
              Expr.Const 1,
              Expr.Binop (Expr.Mul, Expr.Const 2, Expr.Const 3) )
        in
        check_int "1+2*3" 7
          (Expr.eval
             ~read:(fun _ -> 0)
             ~scalar:(fun _ -> 0)
             ~index:(fun _ -> 0)
             e));
    Alcotest.test_case "reads in order" `Quick (fun () ->
        match l1.Nest.body with
        | [ _; s2 ] ->
          Alcotest.check Alcotest.(list string) "read arrays"
            [ "A"; "C" ]
            (List.map (fun r -> r.Aref.array) (Stmt.reads s2))
        | _ -> Alcotest.fail "body shape");
    Alcotest.test_case "printing with parens" `Quick (fun () ->
        let e =
          Expr.Binop
            ( Expr.Mul,
              Expr.Binop (Expr.Add, Expr.Index "i", Expr.Const 1),
              Expr.Const 2 )
        in
        check_string "parens" "(i + 1) * 2" (Format.asprintf "%a" Expr.pp e));
  ]

let step_cases =
  [
    Alcotest.test_case "step normalization" `Quick (fun () ->
        let t = Parse.nest "for i = 0 to 10 step 2\nA[i] := i + 1;\nend" in
        check_int "six iterations" 6 (Nest.cardinal t);
        let m = Cf_exec.Seqexec.run t in
        Alcotest.check Alcotest.(option int) "A[4] = 5" (Some 5)
          (Cf_exec.Seqexec.lookup m "A" [| 4 |]);
        Alcotest.check Alcotest.(option int) "A[10] = 11" (Some 11)
          (Cf_exec.Seqexec.lookup m "A" [| 10 |]);
        Alcotest.check Alcotest.(option int) "A[1] untouched" None
          (Cf_exec.Seqexec.lookup m "A" [| 1 |]));
    Alcotest.test_case "step 1 is the identity" `Quick (fun () ->
        let a = Parse.nest "for i = 1 to 4 step 1\nA[i] := i;\nend" in
        let b = Parse.nest "for i = 1 to 4\nA[i] := i;\nend" in
        check_int "same cardinal" (Nest.cardinal b) (Nest.cardinal a);
        check_bool "same result" true
          (Cf_exec.Seqexec.equal_on_written (Cf_exec.Seqexec.run a)
             (Cf_exec.Seqexec.run b)));
    Alcotest.test_case "step rewrites inner bounds" `Quick (fun () ->
        (* j ranges over i..4 with i stepping by 3: i in {1, 4}. *)
        let t =
          Parse.nest
            "for i = 1 to 4 step 3\nfor j = i to 4\nA[i, j] := 1;\nend\nend"
        in
        (* i=1: j=1..4 (4 iters); i=4: j=4..4 (1 iter). *)
        check_int "five iterations" 5 (Nest.cardinal t));
    Alcotest.test_case "step on empty and degenerate ranges" `Quick (fun () ->
        let t = Parse.nest "for i = 5 to 4 step 2\nA[i] := 1;\nend" in
        check_int "empty" 0 (Nest.cardinal t);
        let t = Parse.nest "for i = 3 to 3 step 7\nA[i] := 1;\nend" in
        check_int "single" 1 (Nest.cardinal t));
    Alcotest.test_case "step errors" `Quick (fun () ->
        (match Parse.nest "for i = 1 to 4 step 0\nA[i] := 1;\nend" with
         | exception Parse.Error _ -> ()
         | _ -> Alcotest.fail "step 0 must be rejected");
        (match
           Parse.nest
             "for i = 1 to 4\nfor j = i to 8 step 2\nA[i, j] := 1;\nend\nend"
         with
         | exception Parse.Error _ -> ()
         | _ -> Alcotest.fail "non-constant stepped bounds must be rejected"));
    Alcotest.test_case "step in imperfect nests" `Quick (fun () ->
        let l =
          Parse.imperfect
            "for i = 2 to 6 step 2\nS[i] := 0;\nfor j = 1 to 2\nS[i] := S[i] + A[i, j];\nend\nend"
        in
        check_bool "distribution still legal" true
          (Cf_frontend.Distribution.preserves l));
  ]

let step_properties =
  [
    qtest "step normalization hits exactly the strided points" ~count:200
      (fun (lo, extent, s) ->
        let hi = lo + extent in
        let src =
          Printf.sprintf "for i = %d to %d step %d\nA[i] := i;\nend" lo hi s
        in
        let t = Parse.nest src in
        let written =
          Cf_exec.Seqexec.bindings (Cf_exec.Seqexec.run t)
          |> List.map (fun (_, el, v) -> (el.(0), v))
          |> List.sort compare
        in
        let expected =
          let rec go x acc = if x > hi then List.rev acc else go (x + s) ((x, x) :: acc) in
          go lo []
        in
        written = expected)
      QCheck.(triple (int_range (-5) 5) (int_range 0 12) (int_range 1 5));
  ]

let suites =
  [
    ("affine", affine_cases);
    ("aref", aref_cases);
    ("expr", expr_cases);
    ("nest", nest_cases);
    ("parse", parse_cases);
    ("step", step_cases);
    ("step-properties", step_properties);
  ]
