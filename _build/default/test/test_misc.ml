(* Edge cases and small behaviors not exercised by the main suites. *)

open Cf_rational
open Cf_linalg
open Testutil

let vec = Alcotest.testable Vec.pp Vec.equal

let linalg_edge =
  [
    Alcotest.test_case "Vec misc" `Quick (fun () ->
        Alcotest.check Alcotest.(option int) "first_nonzero" (Some 1)
          (Vec.first_nonzero (Vec.of_int_list [ 0; 5; 0 ]));
        Alcotest.check Alcotest.(option int) "all zero" None
          (Vec.first_nonzero (Vec.zero 3));
        Alcotest.check_raises "to_int_exn rejects fractions"
          (Invalid_argument "Vec.to_int_exn: non-integer entry") (fun () ->
            ignore (Vec.to_int_exn (Vec.of_list [ Rat.make 1 2 ])));
        Alcotest.check vec "map2" (Vec.of_int_list [ 2; 6 ])
          (Vec.map2 Rat.mul (Vec.of_int_list [ 1; 2 ]) (Vec.of_int_list [ 2; 3 ]));
        Alcotest.check_raises "dimension mismatch"
          (Invalid_argument "Vec: dimension mismatch") (fun () ->
            ignore (Vec.add (Vec.zero 2) (Vec.zero 3))));
    Alcotest.test_case "Mat rows/cols accessors" `Quick (fun () ->
        let m = Mat.of_int_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
        Alcotest.check vec "row" (Vec.of_int_list [ 4; 5; 6 ]) (Mat.row m 1);
        Alcotest.check vec "col" (Vec.of_int_list [ 2; 5 ]) (Mat.col m 1);
        check_int "rows" 2 (Mat.rows m);
        check_int "cols" 3 (Mat.cols m);
        Alcotest.check_raises "empty cols"
          (Invalid_argument "Mat.cols: empty matrix") (fun () ->
            ignore (Mat.cols [||])));
    Alcotest.test_case "Subspace add_vector and join_all" `Quick (fun () ->
        let s = Subspace.zero 3 in
        let s = Subspace.add_vector s (Vec.of_int_list [ 1; 0; 0 ]) in
        let s = Subspace.add_vector s (Vec.of_int_list [ 2; 0; 0 ]) in
        check_int "no growth on dependent" 1 (Subspace.dim s);
        let j =
          Subspace.join_all 2
            [ Subspace.span 2 [ Vec.of_int_list [ 1; 0 ] ];
              Subspace.span 2 [ Vec.of_int_list [ 0; 1 ] ] ]
        in
        check_bool "join_all full" true (Subspace.is_full j);
        check_bool "trivial" true (Subspace.is_trivial (Subspace.zero 4)));
    Alcotest.test_case "Oint.lcm overflow detection" `Quick (fun () ->
        Alcotest.check_raises "overflow" Oint.Overflow (fun () ->
            ignore (Oint.lcm max_int (max_int - 1))));
  ]

let lattice_edge =
  [
    Alcotest.test_case "Babai coordinates and rounding" `Quick (fun () ->
        let basis = [ [| 2; 0 |]; [| 0; 3 |] ] in
        (match Cf_lattice.Babai.coordinates ~basis (Vec.of_int_list [ 4; 3 ]) with
         | Some x ->
           Alcotest.check vec "coords"
             (Vec.of_list [ Rat.of_int 2; Rat.one ])
             x
         | None -> Alcotest.fail "coordinates");
        Alcotest.check Alcotest.(array int) "round_point" [| 4; 3 |]
          (Cf_lattice.Babai.round_point ~basis
             (Vec.of_list [ Rat.of_int 4; Rat.make 10 3 |> Rat.abs ])));
    Alcotest.test_case "Intlin validation" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Intlin: empty matrix")
          (fun () -> ignore (Cf_lattice.Intlin.reduce [||]));
        Alcotest.check_raises "ragged" (Invalid_argument "Intlin: ragged matrix")
          (fun () ->
            ignore (Cf_lattice.Intlin.reduce [| [| 1; 2 |]; [| 1 |] |])));
  ]

let machine_edge =
  [
    Alcotest.test_case "multicast requires targets" `Quick (fun () ->
        let m =
          Cf_machine.Machine.create (Cf_machine.Topology.linear 2)
            Cf_machine.Cost.transputer
        in
        Alcotest.check_raises "empty group"
          (Invalid_argument "Machine.host_multicast: no targets") (fun () ->
            Cf_machine.Machine.host_multicast m ~pes:[] "A" []));
    Alcotest.test_case "topology bounds" `Quick (fun () ->
        let t = Cf_machine.Topology.mesh [| 2; 3 |] in
        Alcotest.check_raises "rank range"
          (Invalid_argument "Topology.coords_of_rank: out of range") (fun () ->
            ignore (Cf_machine.Topology.coords_of_rank t 6));
        Alcotest.check_raises "coord range"
          (Invalid_argument "Topology.rank_of_coords: out of range") (fun () ->
            ignore (Cf_machine.Topology.rank_of_coords t [| 2; 0 |])));
    Alcotest.test_case "local_elements lists stored data" `Quick (fun () ->
        let m =
          Cf_machine.Machine.create (Cf_machine.Topology.linear 1)
            Cf_machine.Cost.transputer
        in
        Cf_machine.Machine.store m ~pe:0 "A" [| 1 |] 5;
        Cf_machine.Machine.store m ~pe:0 "B" [| 2 |] 6;
        Alcotest.check
          Alcotest.(list (triple string (array int) int))
          "sorted listing"
          [ ("A", [| 1 |], 5); ("B", [| 2 |], 6) ]
          (Cf_machine.Machine.local_elements m ~pe:0));
  ]

let partition_edge =
  [
    Alcotest.test_case "block lookups" `Quick (fun () ->
        let psi = Cf_core.Strategy.partitioning_space Cf_core.Strategy.Nonduplicate l1 in
        let p = Cf_core.Iter_partition.make l1 psi in
        Alcotest.check_raises "outside space" Not_found (fun () ->
            ignore (Cf_core.Iter_partition.block_of_iteration p [| 9; 9 |]));
        let dp = Cf_core.Data_partition.make l1 p "A" in
        Alcotest.check_raises "bad block id"
          (Invalid_argument "Data_partition.block: bad block id") (fun () ->
            ignore (Cf_core.Data_partition.block dp 0));
        check_bool "block 1 non-empty" true
          (Cf_core.Data_partition.block dp 1 <> []));
    Alcotest.test_case "min_block_size" `Quick (fun () ->
        let psi = Cf_core.Strategy.partitioning_space Cf_core.Strategy.Nonduplicate l1 in
        let p = Cf_core.Iter_partition.make l1 psi in
        check_int "corner blocks" 1 (Cf_core.Iter_partition.min_block_size p));
    Alcotest.test_case "strategy array_space dispatch" `Quick (fun () ->
        let s1 =
          Cf_core.Strategy.array_space Cf_core.Strategy.Nonduplicate l1 "C"
        in
        let s2 = Cf_core.Strategy.array_space Cf_core.Strategy.Duplicate l1 "C" in
        check_int "C full ref space has dim 1" 1 (Subspace.dim s1);
        check_int "C reduced is trivial" 0 (Subspace.dim s2));
  ]

let report_edge =
  [
    Alcotest.test_case "assignment grid with one forall dim" `Quick (fun () ->
        let psi = Cf_core.Strategy.partitioning_space Cf_core.Strategy.Nonduplicate l1 in
        let pl = Cf_transform.Transformer.transform l1 psi in
        let s = Cf_report.Figures.assignment_grid pl ~grid:[| 3 |] in
        check_bool "lists PEs" true
          (let nl = String.length "PE2:" and hl = String.length s in
           let rec go i =
             i + nl <= hl && (String.sub s i nl = "PE2:" || go (i + 1))
           in
           go 0));
    Alcotest.test_case "commcost printer" `Quick (fun () ->
        let c =
          { Cf_exec.Commcost.total_flow_pairs = 5; remote_reads = 2;
            remote_values = 1 }
        in
        check_string "render" "flow pairs 5, remote reads 2, remote values 1"
          (Format.asprintf "%a" Cf_exec.Commcost.pp c));
    Alcotest.test_case "machine event printer" `Quick (fun () ->
        check_string "send"
          "send A[3 words] -> PE2"
          (Format.asprintf "%a" Cf_machine.Machine.pp_event
             (Cf_machine.Machine.Send { pe = 2; array = "A"; size = 3 })));
  ]

let exec_edge =
  [
    Alcotest.test_case "seqexec lookup missing element" `Quick (fun () ->
        let m = Cf_exec.Seqexec.run l1 in
        Alcotest.check Alcotest.(option int) "never written" None
          (Cf_exec.Seqexec.lookup m "A" [| 99; 99 |]));
    Alcotest.test_case "cyclic placement validation" `Quick (fun () ->
        Alcotest.check_raises "nprocs"
          (Invalid_argument "Parexec.cyclic") (fun () ->
            ignore (Cf_exec.Parexec.cyclic ~nprocs:0 1));
        check_int "wraps" 0 (Cf_exec.Parexec.cyclic ~nprocs:3 4));
    Alcotest.test_case "matmul rejects non-square p" `Quick (fun () ->
        Alcotest.check_raises "p=3"
          (Invalid_argument "Matmul: p must be a perfect square") (fun () ->
            ignore (Cf_exec.Matmul.simulate Cf_exec.Matmul.Dup_ab ~m:4 ~p:3)));
  ]

let string_properties =
  [
    qtest "Rat.of_string/to_string round trip" ~count:200
      (fun (n, d) ->
        let d = if d = 0 then 1 else d in
        let r = Rat.make n d in
        Rat.equal r (Rat.of_string (Rat.to_string r)))
      QCheck.(pair (int_range (-10000) 10000) (int_range (-500) 500));
    qtest "clear_denominators is parallel and primitive" ~count:200
      (fun (a, b, d) ->
        let d = if d = 0 then 1 else d in
        let v = Vec.of_list [ Rat.make a d; Rat.make b d ] in
        let w = Vec.clear_denominators v in
        (* parallel: cross product zero *)
        let cross =
          Rat.sub
            (Rat.mul v.(0) (Rat.of_int w.(1)))
            (Rat.mul v.(1) (Rat.of_int w.(0)))
        in
        Rat.is_zero cross
        && (Array.for_all (( = ) 0) w || Array.fold_left Oint.gcd 0 w = 1))
      QCheck.(triple (int_range (-30) 30) (int_range (-30) 30)
                (int_range (-12) 12));
  ]

let suites =
  [
    ("linalg-edge", linalg_edge);
    ("lattice-edge", lattice_edge);
    ("machine-edge", machine_edge);
    ("partition-edge", partition_edge);
    ("report-edge", report_edge);
    ("exec-edge", exec_edge);
    ("misc-properties", string_properties);
  ]
