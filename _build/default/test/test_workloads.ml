open Cf_workloads
open Testutil

let expectation_case kernel =
  Alcotest.test_case kernel.Workloads.name `Quick (fun () ->
      let rows = Workloads.study kernel in
      check_int "four strategies" 4 (List.length rows);
      List.iter
        (fun (r : Workloads.study_row) ->
          check_bool
            (Printf.sprintf "%s verified under %s" r.Workloads.kernel
               (Cf_core.Strategy.to_string r.Workloads.strategy))
            true r.Workloads.verified)
        rows;
      let e = kernel.Workloads.expected in
      check_bool "documented expectation achieved" true
        (List.exists
           (fun (r : Workloads.study_row) ->
             r.Workloads.strategy = e.Workloads.strategy
             && r.Workloads.parallel_dims = e.Workloads.parallel_dims)
           rows))

let workload_cases = List.map expectation_case Workloads.all

let structure_cases =
  [
    Alcotest.test_case "kernels scale with size" `Quick (fun () ->
        List.iter
          (fun k ->
            let small = k.Workloads.build ~size:3 in
            let big = k.Workloads.build ~size:5 in
            check_bool
              (k.Workloads.name ^ " grows")
              true
              (Cf_loop.Nest.cardinal big > Cf_loop.Nest.cardinal small))
          Workloads.all);
    Alcotest.test_case "all kernels uniformly generated" `Quick (fun () ->
        List.iter
          (fun k ->
            check_bool k.Workloads.name true
              (Cf_loop.Nest.all_uniformly_generated (k.Workloads.build ~size:4)))
          Workloads.all);
    Alcotest.test_case "sor stays sequential under every strategy" `Quick
      (fun () ->
        List.iter
          (fun (r : Workloads.study_row) ->
            check_int
              (Cf_core.Strategy.to_string r.Workloads.strategy)
              0 r.Workloads.parallel_dims)
          (Workloads.study Workloads.sor));
    Alcotest.test_case "convolution partition is anti-diagonal" `Quick
      (fun () ->
        let nest = Workloads.convolution.build ~size:4 in
        let psi =
          Cf_core.Strategy.partitioning_space Cf_core.Strategy.Duplicate nest
        in
        check_bool "contains (1,-1)" true
          (Cf_linalg.Subspace.mem_int psi [| 1; -1 |]);
        check_int "dim 1" 1 (Cf_linalg.Subspace.dim psi));
    Alcotest.test_case "dft is row-parallel under duplication" `Quick
      (fun () ->
        let nest = Workloads.dft.build ~size:4 in
        let psi =
          Cf_core.Strategy.partitioning_space Cf_core.Strategy.Duplicate nest
        in
        check_bool "contains (0,1)" true
          (Cf_linalg.Subspace.mem_int psi [| 0; 1 |]);
        check_int "dim 1" 1 (Cf_linalg.Subspace.dim psi));
    Alcotest.test_case "transform covers every kernel's space" `Quick
      (fun () ->
        List.iter
          (fun k ->
            let nest = k.Workloads.build ~size:4 in
            let psi =
              Cf_core.Strategy.partitioning_space Cf_core.Strategy.Duplicate
                nest
            in
            let pl = Cf_transform.Transformer.transform nest psi in
            let got = ref [] in
            Cf_transform.Parloop.iter pl (fun ~block:_ ~iter ->
                got := iter :: !got);
            check_bool k.Workloads.name true
              (List.sort compare !got
               = List.sort compare (Cf_loop.Nest.iterations nest)))
          Workloads.all);
    Alcotest.test_case "every kernel simulates correctly" `Quick (fun () ->
        List.iter
          (fun k ->
            let nest = k.Workloads.build ~size:4 in
            let plan =
              Cf_pipeline.Pipeline.plan ~strategy:Cf_core.Strategy.Duplicate
                nest
            in
            let sim = Cf_pipeline.Pipeline.simulate ~procs:3 plan in
            check_bool k.Workloads.name true
              (Cf_exec.Parexec.ok sim.Cf_pipeline.Pipeline.report))
          Workloads.all);
    Alcotest.test_case "triangular nests are non-rectangular" `Quick
      (fun () ->
        check_bool "tri-rank1" false
          (Cf_loop.Nest.is_rectangular
             (Workloads.triangular_rank1.build ~size:4));
        check_int "triangle cardinal" 10
          (Cf_loop.Nest.cardinal (Workloads.triangular_rank1.build ~size:4)));
    Alcotest.test_case "study sizes are configurable" `Quick (fun () ->
        let rows = Workloads.study ~size:3 Workloads.rank1_update in
        check_bool "9 singleton blocks under duplication" true
          (List.exists
             (fun (r : Workloads.study_row) ->
               r.Workloads.strategy = Cf_core.Strategy.Duplicate
               && r.Workloads.blocks = 9)
             rows));
  ]

let suites =
  [ ("workloads", workload_cases); ("workload-structure", structure_cases) ]
