open Cf_rational
open Cf_linalg
open Cf_core
open Cf_transform
open Testutil

let v l = Vec.of_int_list l

let raffine_cases =
  [
    Alcotest.test_case "algebra" `Quick (fun () ->
        let a = Raffine.var 3 0 and b = Raffine.var 3 2 in
        let s = Raffine.add (Raffine.scale (Rat.of_int 2) a) b in
        Alcotest.check
          (Alcotest.testable Rat.pp Rat.equal)
          "eval" (Rat.of_int 7)
          (Raffine.eval_int s [| 2; 9; 3 |]);
        check_bool "not constant" false (Raffine.is_constant s);
        check_bool "constant" true (Raffine.is_constant (Raffine.const 3 5)));
    Alcotest.test_case "last_var and drop" `Quick (fun () ->
        let s = Raffine.add (Raffine.var 3 0) (Raffine.var 3 2) in
        Alcotest.check Alcotest.(option int) "last" (Some 2)
          (Raffine.last_var_with_nonzero s);
        Alcotest.check Alcotest.(option int) "after drop" (Some 0)
          (Raffine.last_var_with_nonzero (Raffine.drop_var s 2)));
    Alcotest.test_case "printing" `Quick (fun () ->
        let f =
          Raffine.add
            (Raffine.scale (Rat.make 1 2) (Raffine.var 2 0))
            (Raffine.add
               (Raffine.scale (Rat.of_int (-1)) (Raffine.var 2 1))
               (Raffine.const 2 3))
        in
        check_string "render" "1/2*x - y + 3"
          (Format.asprintf "%a" (Raffine.pp ~names:[| "x"; "y" |]) f);
        check_string "zero" "0"
          (Format.asprintf "%a" (Raffine.pp ~names:[| "x"; "y" |])
             (Raffine.const 2 0)));
  ]

let fourier_cases =
  [
    Alcotest.test_case "rectangle bounds" `Quick (fun () ->
        (* 1 <= x <= 4, 1 <= y <= 3 over vars (x, y). *)
        let c k lo hi =
          [ Raffine.add (Raffine.var 2 k) (Raffine.const 2 (-lo));
            Raffine.add
              (Raffine.scale Rat.minus_one (Raffine.var 2 k))
              (Raffine.const 2 hi) ]
        in
        let bounds = Fourier.loop_bounds ~nvars:2 (c 0 1 4 @ c 1 1 3) in
        check_int "x lower" 1 (Fourier.lower_value bounds.(0).lowers [| 0; 0 |]);
        check_int "x upper" 4 (Fourier.upper_value bounds.(0).uppers [| 0; 0 |]);
        check_int "y lower" 1 (Fourier.lower_value bounds.(1).lowers [| 2; 0 |]);
        check_int "y upper" 3 (Fourier.upper_value bounds.(1).uppers [| 2; 0 |]));
    Alcotest.test_case "diagonal band projects correctly" `Quick (fun () ->
        (* 1 <= x <= 4, 1 <= y <= 4, 3 <= x + y <= 5. *)
        let var k = Raffine.var 2 k in
        let ge f c = Raffine.add f (Raffine.const 2 (-c)) in
        let le f c =
          Raffine.add (Raffine.scale Rat.minus_one f) (Raffine.const 2 c)
        in
        let sum = Raffine.add (var 0) (var 1) in
        let constraints =
          [ ge (var 0) 1; le (var 0) 4; ge (var 1) 1; le (var 1) 4;
            ge sum 3; le sum 5 ]
        in
        let bounds = Fourier.loop_bounds ~nvars:2 constraints in
        (* After eliminating y: x in [max(1, 3-4), min(4, 5-1)] = [1,4]. *)
        check_int "x lo" 1 (Fourier.lower_value bounds.(0).lowers [| 0; 0 |]);
        check_int "x hi" 4 (Fourier.upper_value bounds.(0).uppers [| 0; 0 |]);
        (* For x = 1: y in [2, 4]; for x = 4: y in [1, 1]. *)
        check_int "y lo at x=1" 2
          (Fourier.lower_value bounds.(1).lowers [| 1; 0 |]);
        check_int "y hi at x=1" 4
          (Fourier.upper_value bounds.(1).uppers [| 1; 0 |]);
        check_int "y lo at x=4" 1
          (Fourier.lower_value bounds.(1).lowers [| 4; 0 |]);
        check_int "y hi at x=4" 1
          (Fourier.upper_value bounds.(1).uppers [| 4; 0 |]));
    Alcotest.test_case "eliminate drops the variable" `Quick (fun () ->
        let var k = Raffine.var 2 k in
        let constraints =
          [ Raffine.add (var 0) (Raffine.scale Rat.minus_one (var 1));
            Raffine.add (var 1) (Raffine.const 2 (-1)) ]
        in
        let projected = Fourier.eliminate ~var:1 constraints in
        check_bool "no var 1 left" true
          (List.for_all
             (fun f -> Rat.is_zero (Raffine.coeff f 1))
             projected));
    Alcotest.test_case "infeasible detection" `Quick (fun () ->
        Alcotest.check_raises "negative constant"
          (Invalid_argument "Fourier: infeasible constraint system")
          (fun () ->
            ignore
              (Fourier.loop_bounds ~nvars:1 [ Raffine.const 1 (-1) ])));
  ]

let echelon_cases =
  [
    Alcotest.test_case "paper L4 basis provenance" `Quick (fun () ->
        (* Q = {(1,1,0), (-1,0,1)}: echelon pivots are columns 0 and 1,
           with original rows as the defining vectors. *)
        match Transformer.echelon_with_provenance [ [| 1; 1; 0 |]; [| -1; 0; 1 |] ]
        with
        | [ (0, a1); (1, a2) ] ->
          Alcotest.check Alcotest.(array int) "a1" [| 1; 1; 0 |] a1;
          Alcotest.check Alcotest.(array int) "a2" [| -1; 0; 1 |] a2
        | l -> Alcotest.failf "unexpected provenance (%d rows)" (List.length l));
    Alcotest.test_case "gcd normalization" `Quick (fun () ->
        match Transformer.echelon_with_provenance [ [| 2; 2; 0 |] ] with
        | [ (0, a) ] -> Alcotest.check Alcotest.(array int) "primitive" [| 1; 1; 0 |] a
        | _ -> Alcotest.fail "one row");
    Alcotest.test_case "completion picks independent units" `Quick (fun () ->
        Alcotest.check Alcotest.(array int) "L4 inner = position 0" [| 0 |]
          (Transformer.completion ~n:3 [ [| 1; 1; 0 |]; [| -1; 0; 1 |] ]);
        Alcotest.check Alcotest.(array int) "identity rows leave nothing" [||]
          (Transformer.completion ~n:2 [ [| 1; 0 |]; [| 0; 1 |] ]);
        Alcotest.check Alcotest.(array int) "empty rows keep all" [| 0; 1 |]
          (Transformer.completion ~n:2 []));
  ]

let coverage nest pl =
  let got = ref [] in
  Parloop.iter pl (fun ~block:_ ~iter -> got := iter :: !got);
  List.sort compare !got = List.sort compare (Cf_loop.Nest.iterations nest)

let transform_cases =
  [
    Alcotest.test_case "L4' reproduces the paper" `Quick (fun () ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate l4 in
        let pl =
          Transformer.transform ~basis:[ [| 1; 1; 0 |]; [| -1; 0; 1 |] ] l4 psi
        in
        check_int "two foralls" 2 pl.Parloop.n_forall;
        Alcotest.check Alcotest.(array string) "variable names"
          [| "i1'"; "i2'"; "i1" |] (Parloop.names pl);
        check_bool "no guards needed" false (Parloop.needs_guards pl);
        check_bool "covers iteration space" true (coverage l4 pl);
        check_int "37 blocks" 37 (List.length (Parloop.blocks pl));
        (* The forall ranges of loop L4': i1' = 2..8; at i1' = 2 the
           second forall runs from 0 to 3; at i1' = 8, -3 to 0. *)
        let b0 = pl.Parloop.levels.(0).bounds in
        check_int "i1' lower" 2 (Fourier.lower_value b0.Fourier.lowers [| 0; 0; 0 |]);
        check_int "i1' upper" 8 (Fourier.upper_value b0.Fourier.uppers [| 0; 0; 0 |]);
        let b1 = pl.Parloop.levels.(1).bounds in
        check_int "i2' lower at i1'=2" 0
          (Fourier.lower_value b1.Fourier.lowers [| 2; 0; 0 |]);
        check_int "i2' upper at i1'=2" 3
          (Fourier.upper_value b1.Fourier.uppers [| 2; 0; 0 |]);
        check_int "i2' lower at i1'=8" (-3)
          (Fourier.lower_value b1.Fourier.lowers [| 8; 0; 0 |]);
        check_int "i2' upper at i1'=8" 0
          (Fourier.upper_value b1.Fourier.uppers [| 8; 0; 0 |]);
        (* Inner bounds at (i1', i2') = (5, 0): i1 = max(1,1,1)..min(4,4,4). *)
        let b2 = pl.Parloop.levels.(2).bounds in
        check_int "i1 lower" 1 (Fourier.lower_value b2.Fourier.lowers [| 5; 0; 0 |]);
        check_int "i1 upper" 4 (Fourier.upper_value b2.Fourier.uppers [| 5; 0; 0 |]));
    Alcotest.test_case "Fig. 10: 2x2 cyclic assignment balances L4'" `Quick
      (fun () ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate l4 in
        let pl =
          Transformer.transform ~basis:[ [| 1; 1; 0 |]; [| -1; 0; 1 |] ] l4 psi
        in
        let counts = Cf_exec.Assign.parloop_counts pl ~grid:[| 2; 2 |] in
        Alcotest.check Alcotest.(array int) "16 each" [| 16; 16; 16; 16 |]
          counts);
    Alcotest.test_case "sequential space yields no foralls" `Quick (fun () ->
        let pl = Transformer.transform l2 (Subspace.full 2) in
        check_int "no foralls" 0 pl.Parloop.n_forall;
        check_bool "covers" true (coverage l2 pl));
    Alcotest.test_case "zero space yields all foralls" `Quick (fun () ->
        let pl = Transformer.transform l2 (Subspace.zero 2) in
        check_int "all foralls" 2 pl.Parloop.n_forall;
        check_bool "covers" true (coverage l2 pl);
        check_int "16 blocks" 16 (List.length (Parloop.blocks pl)));
    Alcotest.test_case "invalid basis rejected" `Quick (fun () ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate l4 in
        Alcotest.check_raises "wrong span"
          (Invalid_argument "Transformer.transform: basis does not span Ker(Psi)")
          (fun () ->
            ignore (Transformer.transform ~basis:[ [| 1; 0; 0 |] ] l4 psi)));
    Alcotest.test_case "rendering mentions forall and extended stmts" `Quick
      (fun () ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate l4 in
        let pl =
          Transformer.transform ~basis:[ [| 1; 1; 0 |]; [| -1; 0; 1 |] ] l4 psi
        in
        let s = Format.asprintf "%a" Parloop.pp pl in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        check_bool "forall" true (contains s "forall");
        check_bool "extended statement" true (contains s "i2 := ");
        check_bool "end-forall" true (contains s "end-forall"));
  ]

(* Within-block execution order must respect every dependence the exact
   analysis observes: if src -> dst, then in the transformed enumeration
   src appears before dst (they share a block by communication-freedom). *)
let order_preserved nest pl =
  let seen = Hashtbl.create 256 in
  let time = ref 0 in
  Parloop.iter pl (fun ~block:_ ~iter ->
      Hashtbl.replace seen (Array.to_list iter) !time;
      incr time);
  List.for_all
    (fun (d : Cf_dep.Analysis.dep) ->
      (* Reconstruct concrete instance pairs from the witness: for each
         src iteration i, dst = i + witness, when both are in space. *)
      let w = d.witness in
      Hashtbl.fold
        (fun src t_src acc ->
          acc
          &&
          let dst = List.map2 ( + ) src (Array.to_list w) in
          match Hashtbl.find_opt seen dst with
          | None -> true
          | Some t_dst ->
            if w = Array.map (fun _ -> 0) w then true else t_src < t_dst)
        seen true)
    (Cf_dep.Analysis.deps nest)

(* Differential test of Fourier-Motzkin: the nested-bounds enumeration
   must produce exactly the integer solutions of the constraint set. *)
let fm_points nvars constraints =
  match Fourier.loop_bounds ~nvars constraints with
  | exception Invalid_argument _ -> None (* rationally infeasible *)
  | bounds ->
    let acc = ref [] in
    let x = Array.make nvars 0 in
    let rec go m =
      if m = nvars then acc := Array.copy x :: !acc
      else begin
        let lo = Fourier.lower_value bounds.(m).Fourier.lowers x
        and hi = Fourier.upper_value bounds.(m).Fourier.uppers x in
        for v = lo to hi do
          x.(m) <- v;
          go (m + 1)
        done
      end
    in
    go 0;
    Some (List.sort compare !acc)

let brute_points nvars constraints =
  (* All constraints include the generator's 0..4 box, so +-6 is ample. *)
  let acc = ref [] in
  let x = Array.make nvars 0 in
  let ok () =
    List.for_all
      (fun f ->
        Cf_rational.Rat.sign (Raffine.eval_int f x) >= 0)
      constraints
  in
  let rec go m =
    if m = nvars then (if ok () then acc := Array.copy x :: !acc)
    else
      for v = -6 to 6 do
        x.(m) <- v;
        go (m + 1)
      done
  in
  go 0;
  List.sort compare !acc

let arb_constraints =
  let open QCheck.Gen in
  let nvars = 3 in
  let box =
    List.concat
      (List.init nvars (fun k ->
           [ Raffine.var nvars k;
             Raffine.add
               (Raffine.scale Cf_rational.Rat.minus_one (Raffine.var nvars k))
               (Raffine.const nvars 4) ]))
  in
  let gen_extra =
    let coeff = int_range (-2) 2 in
    list_repeat nvars coeff >>= fun cs ->
    int_range (-4) 8 >|= fun c ->
    List.fold_left Raffine.add (Raffine.const nvars c)
      (List.mapi
         (fun k x ->
           Raffine.scale (Cf_rational.Rat.of_int x) (Raffine.var nvars k))
         cs)
  in
  let gen = int_range 0 2 >>= fun n -> list_repeat n gen_extra >|= fun extra ->
    box @ extra
  in
  QCheck.make gen

let properties =
  [
    qtest "Fourier-Motzkin enumerates exactly the integer points" ~count:150
      (fun constraints ->
        match fm_points 3 constraints with
        | None -> brute_points 3 constraints = []
        | Some pts -> pts = brute_points 3 constraints)
      arb_constraints;
    qtest "transform covers the iteration space exactly" ~count:60
      (fun nest ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate nest in
        coverage nest (Transformer.transform nest psi))
      arbitrary_nest;
    qtest "transform under the duplicate space also covers" ~count:60
      (fun nest ->
        let psi = Strategy.partitioning_space Strategy.Duplicate nest in
        coverage nest (Transformer.transform nest psi))
      arbitrary_nest;
    qtest "dependences execute in order" ~count:40
      (fun nest ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate nest in
        order_preserved nest (Transformer.transform nest psi))
      arbitrary_nest;
    qtest "blocks agree with the materialized partition" ~count:40
      (fun nest ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate nest in
        let pl = Transformer.transform nest psi in
        let p = Iter_partition.make nest psi in
        List.length (Parloop.blocks pl) = Iter_partition.block_count p)
      arbitrary_nest;
  ]

let suites =
  [
    ("raffine", raffine_cases);
    ("fourier", fourier_cases);
    ("echelon", echelon_cases);
    ("transform", transform_cases);
    ("transform-properties", properties);
  ]
