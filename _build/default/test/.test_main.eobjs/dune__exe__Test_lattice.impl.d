test/test_lattice.ml: Alcotest Array Babai Cf_lattice Cf_linalg Intlin List Lll QCheck Smith Testutil
