test/test_baseline.ml: Alcotest Cf_baseline Cf_core Cf_linalg Cf_loop Cf_rational Cf_workloads Hyperplane List Subspace Testutil Vec
