test/test_cgen.ml: Alcotest Cf_cgen Cf_core Cf_linalg Cf_transform Cf_workloads Cgen Filename Lazy List Printf String Sys Testutil
