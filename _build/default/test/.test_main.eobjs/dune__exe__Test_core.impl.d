test/test_core.ml: Alcotest Array Cf_core Cf_dep Cf_linalg Cf_loop Data_partition Format Iter_partition List Refspace Strategy String Subspace Testutil Vec Verify
