test/test_workloads.ml: Alcotest Cf_core Cf_exec Cf_linalg Cf_loop Cf_pipeline Cf_transform Cf_workloads List Printf Testutil Workloads
