test/test_misc.ml: Alcotest Array Cf_core Cf_exec Cf_lattice Cf_linalg Cf_machine Cf_rational Cf_report Cf_transform Format Mat Oint QCheck Rat String Subspace Testutil Vec
