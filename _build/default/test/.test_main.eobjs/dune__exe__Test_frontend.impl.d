test/test_frontend.ml: Affine Alcotest Aref Array Cf_core Cf_exec Cf_frontend Cf_loop Cf_pipeline Distribution Expr Imperfect List Nest Parse Stmt Testutil
