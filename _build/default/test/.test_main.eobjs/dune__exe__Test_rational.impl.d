test/test_rational.ml: Alcotest Cf_rational Float Oint QCheck Rat Testutil
