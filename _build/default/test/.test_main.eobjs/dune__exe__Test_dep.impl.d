test/test_dep.ml: Alcotest Analysis Aref Array Cf_dep Cf_exec Cf_lattice Cf_loop Exact Graph Kind List Nest Printf String Testutil Witness
