test/test_machine.ml: Alcotest Cf_exec Cf_machine Cost Format List Machine String Testutil Topology
