test/test_pipeline.ml: Alcotest Array Cf_core Cf_exec Cf_loop Cf_machine Cf_pipeline Cf_transform Cf_workloads Diagnose Format List Pipeline String Testutil
