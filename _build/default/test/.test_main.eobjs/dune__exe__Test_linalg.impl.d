test/test_linalg.ml: Alcotest Cf_linalg Cf_rational List Mat QCheck Rat Subspace Testutil Vec
