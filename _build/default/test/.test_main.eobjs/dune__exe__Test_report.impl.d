test/test_report.ml: Alcotest Allocmap Cf_core Cf_exec Cf_linalg Cf_report Cf_transform Figures Iter_partition List Printf Strategy String Svg Tables Testutil
