test/test_loop.ml: Affine Alcotest Aref Array Cf_exec Cf_frontend Cf_loop Expr Format List Nest Parse Printf QCheck Stmt String Testutil
