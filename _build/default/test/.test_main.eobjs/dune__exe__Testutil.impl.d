test/testutil.ml: Affine Alcotest Aref Array Cf_exec Cf_loop Expr Format Nest Parse QCheck QCheck_alcotest Stmt
