test/test_depth3.ml: Affine Aref Array Cf_core Cf_dep Cf_exec Cf_loop Cf_pipeline Cf_transform Expr Format Iter_partition List Nest Parse QCheck Stmt Strategy Testutil Verify
