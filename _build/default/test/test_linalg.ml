open Cf_rational
open Cf_linalg
open Testutil

let vec = Alcotest.testable Vec.pp Vec.equal
let mat = Alcotest.testable Mat.pp Mat.equal
let subspace = Alcotest.testable Subspace.pp Subspace.equal

let v l = Vec.of_int_list l
let m rows = Mat.of_int_rows rows

let vec_cases =
  [
    Alcotest.test_case "construction" `Quick (fun () ->
        Alcotest.check vec "basis" (v [ 0; 1; 0 ]) (Vec.basis 3 1);
        Alcotest.check vec "zero" (v [ 0; 0 ]) (Vec.zero 2);
        Alcotest.check_raises "basis range" (Invalid_argument "Vec.basis")
          (fun () -> ignore (Vec.basis 2 5)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        Alcotest.check vec "add" (v [ 3; 5 ]) (Vec.add (v [ 1; 2 ]) (v [ 2; 3 ]));
        Alcotest.check vec "sub" (v [ -1; -1 ])
          (Vec.sub (v [ 1; 2 ]) (v [ 2; 3 ]));
        Alcotest.check vec "scale"
          (Vec.of_list [ Rat.make 1 2; Rat.one ])
          (Vec.scale (Rat.make 1 2) (v [ 1; 2 ]));
        Alcotest.check
          (Alcotest.testable Rat.pp Rat.equal)
          "dot" (Rat.of_int 8)
          (Vec.dot (v [ 1; 2 ]) (v [ 2; 3 ])));
    Alcotest.test_case "lex order" `Quick (fun () ->
        check_bool "compare" true (Vec.compare (v [ 1; 9 ]) (v [ 2; 0 ]) < 0);
        check_int "lex_sign pos" 1 (Vec.lex_sign (v [ 0; 3 ]));
        check_int "lex_sign neg" (-1) (Vec.lex_sign (v [ 0; -3 ]));
        check_int "lex_sign zero" 0 (Vec.lex_sign (v [ 0; 0 ])));
    Alcotest.test_case "clear_denominators" `Quick (fun () ->
        Alcotest.check
          Alcotest.(array int)
          "halves" [| 1; 1 |]
          (Vec.clear_denominators
             (Vec.of_list [ Rat.make 1 2; Rat.make 1 2 ]));
        Alcotest.check
          Alcotest.(array int)
          "primitive" [| 2; 3 |]
          (Vec.clear_denominators (v [ 4; 6 ]));
        Alcotest.check
          Alcotest.(array int)
          "zero" [| 0; 0 |]
          (Vec.clear_denominators (v [ 0; 0 ])));
  ]

let mat_cases =
  [
    Alcotest.test_case "mul and transpose" `Quick (fun () ->
        Alcotest.check mat "identity mul"
          (m [ [ 1; 2 ]; [ 3; 4 ] ])
          (Mat.mul (Mat.identity 2) (m [ [ 1; 2 ]; [ 3; 4 ] ]));
        Alcotest.check mat "transpose"
          (m [ [ 1; 3 ]; [ 2; 4 ] ])
          (Mat.transpose (m [ [ 1; 2 ]; [ 3; 4 ] ]));
        Alcotest.check vec "mul_vec" (v [ 5; 11 ])
          (Mat.mul_vec (m [ [ 1; 2 ]; [ 3; 4 ] ]) (v [ 1; 2 ])));
    Alcotest.test_case "rref and rank" `Quick (fun () ->
        check_int "full rank" 2 (Mat.rank (m [ [ 2; 0 ]; [ 0; 1 ] ]));
        check_int "deficient" 1 (Mat.rank (m [ [ 1; 1 ]; [ 2; 2 ] ]));
        check_int "zero" 0 (Mat.rank (m [ [ 0; 0 ] ]));
        let e = Mat.rref (m [ [ 0; 2 ]; [ 1; 1 ] ]) in
        Alcotest.check mat "rref result" (Mat.identity 2) e.Mat.rref;
        Alcotest.check
          Alcotest.(array int)
          "pivots" [| 0; 1 |] e.Mat.pivots);
    Alcotest.test_case "kernel" `Quick (fun () ->
        (* L2's H_A: kernel spanned by (1, -1). *)
        (match Mat.kernel (m [ [ 1; 1 ]; [ 1; 1 ] ]) with
         | [ k ] ->
           check_bool "H k = 0" true
             (Vec.is_zero (Mat.mul_vec (m [ [ 1; 1 ]; [ 1; 1 ] ]) k))
         | ks -> Alcotest.failf "expected 1 kernel vector, got %d"
                   (List.length ks));
        Alcotest.check (Alcotest.list vec) "trivial kernel" []
          (Mat.kernel (m [ [ 2; 0 ]; [ 0; 1 ] ])));
    Alcotest.test_case "solve" `Quick (fun () ->
        (match Mat.solve (m [ [ 2; 0 ]; [ 0; 1 ] ]) (v [ 2; 1 ]) with
         | Some x -> Alcotest.check vec "unique" (v [ 1; 1 ]) x
         | None -> Alcotest.fail "expected a solution");
        check_bool "inconsistent" true
          (Mat.solve (m [ [ 1; 1 ]; [ 1; 1 ] ]) (v [ 0; 1 ]) = None);
        (* L2: H_A t = r1 = (1,1) has solutions (1/2,1/2)+Ker. *)
        (match Mat.solve (m [ [ 1; 1 ]; [ 1; 1 ] ]) (v [ 1; 1 ]) with
         | Some x ->
           Alcotest.check vec "residual" (v [ 1; 1 ])
             (Mat.mul_vec (m [ [ 1; 1 ]; [ 1; 1 ] ]) x)
         | None -> Alcotest.fail "expected a solution"));
    Alcotest.test_case "inverse and det" `Quick (fun () ->
        (match Mat.inverse (m [ [ 2; 1 ]; [ 1; 1 ] ]) with
         | Some inv ->
           Alcotest.check mat "M M^-1 = I" (Mat.identity 2)
             (Mat.mul (m [ [ 2; 1 ]; [ 1; 1 ] ]) inv)
         | None -> Alcotest.fail "invertible");
        check_bool "singular" true (Mat.is_singular (m [ [ 1; 1 ]; [ 2; 2 ] ]));
        Alcotest.check
          (Alcotest.testable Rat.pp Rat.equal)
          "det" (Rat.of_int (-2))
          (Mat.det (m [ [ 1; 2 ]; [ 3; 4 ] ]));
        Alcotest.check
          (Alcotest.testable Rat.pp Rat.equal)
          "det singular" Rat.zero
          (Mat.det (m [ [ 1; 1 ]; [ 2; 2 ] ])));
  ]

let subspace_cases =
  [
    Alcotest.test_case "span and dim" `Quick (fun () ->
        check_int "line" 1 (Subspace.dim (Subspace.span 2 [ v [ 1; 1 ] ]));
        check_int "dependent" 1
          (Subspace.dim (Subspace.span 2 [ v [ 1; 1 ]; v [ 2; 2 ] ]));
        check_int "plane" 2
          (Subspace.dim (Subspace.span 2 [ v [ 1; 1 ]; v [ 1; -1 ] ]));
        check_int "zero vectors ignored" 0
          (Subspace.dim (Subspace.span 2 [ v [ 0; 0 ] ])));
    Alcotest.test_case "membership" `Quick (fun () ->
        let s = Subspace.span 3 [ v [ 1; 1; 0 ]; v [ 0; 0; 1 ] ] in
        check_bool "in" true (Subspace.mem s (v [ 2; 2; 5 ]));
        check_bool "out" false (Subspace.mem s (v [ 1; 0; 0 ]));
        check_bool "zero always in" true (Subspace.mem s (v [ 0; 0; 0 ])));
    Alcotest.test_case "join and subset" `Quick (fun () ->
        let a = Subspace.span 2 [ v [ 1; 0 ] ]
        and b = Subspace.span 2 [ v [ 0; 1 ] ] in
        Alcotest.check subspace "join full" (Subspace.full 2) (Subspace.join a b);
        check_bool "subset" true (Subspace.subset a (Subspace.join a b));
        check_bool "not subset" false (Subspace.subset (Subspace.join a b) a));
    Alcotest.test_case "complement" `Quick (fun () ->
        let s = Subspace.span 3 [ v [ 1; -1; 1 ] ] in
        let c = Subspace.complement s in
        check_int "dims add up" 3 (Subspace.dim s + Subspace.dim c);
        List.iter
          (fun bs ->
            List.iter
              (fun bc ->
                check_bool "orthogonal" true (Rat.is_zero (Vec.dot bs bc)))
              (Subspace.basis c))
          (Subspace.basis s);
        Alcotest.check subspace "complement of zero" (Subspace.full 2)
          (Subspace.complement (Subspace.zero 2));
        Alcotest.check subspace "complement of full" (Subspace.zero 2)
          (Subspace.complement (Subspace.full 2)));
    Alcotest.test_case "meet (intersection)" `Quick (fun () ->
        let a = Subspace.span 3 [ v [ 1; 0; 0 ]; v [ 0; 1; 0 ] ] in
        let b = Subspace.span 3 [ v [ 0; 1; 0 ]; v [ 0; 0; 1 ] ] in
        Alcotest.check subspace "xy meet yz = y"
          (Subspace.span 3 [ v [ 0; 1; 0 ] ])
          (Subspace.meet a b);
        Alcotest.check subspace "meet with full is identity" a
          (Subspace.meet a (Subspace.full 3));
        Alcotest.check subspace "meet with zero is zero" (Subspace.zero 3)
          (Subspace.meet a (Subspace.zero 3)));
    Alcotest.test_case "coset keys" `Quick (fun () ->
        let s = Subspace.span 2 [ v [ 1; 1 ] ] in
        let k1 = Subspace.coset_key_int s [| 1; 1 |]
        and k2 = Subspace.coset_key_int s [| 3; 3 |]
        and k3 = Subspace.coset_key_int s [| 1; 2 |] in
        check_bool "same coset" true (Vec.equal k1 k2);
        check_bool "different coset" false (Vec.equal k1 k3));
    Alcotest.test_case "int_basis primitive" `Quick (fun () ->
        let s = Subspace.span 2 [ Vec.of_list [ Rat.make 1 2; Rat.make 1 2 ] ] in
        (match Subspace.int_basis s with
         | [ b ] -> Alcotest.check Alcotest.(array int) "scaled" [| 1; 1 |] b
         | _ -> Alcotest.fail "expected one basis vector"));
  ]

let arb_mat23 =
  QCheck.map
    (fun l -> m l)
    QCheck.(list_of_size (QCheck.Gen.return 2)
              (list_of_size (QCheck.Gen.return 3) (int_range (-4) 4)))

let arb_mat33 =
  QCheck.map
    (fun l -> m l)
    QCheck.(list_of_size (QCheck.Gen.return 3)
              (list_of_size (QCheck.Gen.return 3) (int_range (-4) 4)))

let properties =
  [
    qtest "kernel vectors annihilate"
      (fun a ->
        List.for_all (fun k -> Vec.is_zero (Mat.mul_vec a k)) (Mat.kernel a))
      arb_mat23;
    qtest "rank + kernel dim = cols"
      (fun a -> Mat.rank a + List.length (Mat.kernel a) = 3)
      arb_mat23;
    qtest "solve produces solutions"
      (fun (a, xs) ->
        let x = v xs in
        let b = Mat.mul_vec a x in
        match Mat.solve a b with
        | Some x' -> Vec.equal (Mat.mul_vec a x') b
        | None -> false)
      QCheck.(pair arb_mat23
                (list_of_size (QCheck.Gen.return 3) (int_range (-4) 4)));
    qtest "inverse is two-sided"
      (fun a ->
        match Mat.inverse a with
        | None -> Rat.is_zero (Mat.det a)
        | Some inv ->
          Mat.equal (Mat.mul a inv) (Mat.identity 3)
          && Mat.equal (Mat.mul inv a) (Mat.identity 3)
          && not (Rat.is_zero (Mat.det a)))
      arb_mat33;
    qtest "rref idempotent"
      (fun a ->
        let e = Mat.rref a in
        Mat.equal (Mat.rref e.Mat.rref).Mat.rref e.Mat.rref)
      arb_mat23;
    qtest "transform reproduces rref"
      (fun a ->
        let e = Mat.rref a in
        Mat.equal (Mat.mul e.Mat.transform a) e.Mat.rref)
      arb_mat33;
    qtest "complement dimension"
      (fun rows ->
        let s = Subspace.span 3 (List.map v rows) in
        Subspace.dim s + Subspace.dim (Subspace.complement s) = 3)
      QCheck.(list_of_size (QCheck.Gen.int_range 0 3)
                (list_of_size (QCheck.Gen.return 3) (int_range (-3) 3)));
    qtest "meet is the largest common subspace"
      (fun (rows_a, rows_b) ->
        let a = Subspace.span 3 (List.map v rows_a) in
        let b = Subspace.span 3 (List.map v rows_b) in
        let m = Subspace.meet a b in
        Subspace.subset m a && Subspace.subset m b
        && List.for_all
             (fun bv ->
               (* any basis vector of a that also lies in b is in m *)
               (not (Subspace.mem b bv)) || Subspace.mem m bv)
             (Subspace.basis a))
      QCheck.(pair
                (list_of_size (QCheck.Gen.int_range 0 2)
                   (list_of_size (QCheck.Gen.return 3) (int_range (-3) 3)))
                (list_of_size (QCheck.Gen.int_range 0 2)
                   (list_of_size (QCheck.Gen.return 3) (int_range (-3) 3))));
    qtest "coset key separates exactly"
      (fun (rows, xs, ys) ->
        let s = Subspace.span 2 (List.map v rows) in
        let x = v xs and y = v ys in
        Vec.equal (Subspace.coset_key s x) (Subspace.coset_key s y)
        = Subspace.mem s (Vec.sub x y))
      QCheck.(triple
                (list_of_size (QCheck.Gen.int_range 0 2)
                   (list_of_size (QCheck.Gen.return 2) (int_range (-3) 3)))
                (list_of_size (QCheck.Gen.return 2) (int_range (-5) 5))
                (list_of_size (QCheck.Gen.return 2) (int_range (-5) 5)));
  ]

let suites =
  [
    ("vec", vec_cases);
    ("mat", mat_cases);
    ("subspace", subspace_cases);
    ("linalg-properties", properties);
  ]
