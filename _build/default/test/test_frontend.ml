open Cf_loop
open Cf_frontend
open Testutil

let reduction_src =
  {|
for i = 1 to 4
  S[i] := 0;
  for j = 1 to 4
    S[i] := S[i] + A[i, j];
  end
end
|}

let illegal_src =
  {|
for i = 1 to 4
  B[i] := C[i - 1];
  for j = 1 to 4
    C[i] := C[i] + A[i, j];
  end
end
|}

let imperfect_cases =
  [
    Alcotest.test_case "parse and shape" `Quick (fun () ->
        let l = Parse.imperfect reduction_src in
        check_bool "not perfect" false (Imperfect.is_perfect l);
        check_int "three statements" 2 (List.length (Imperfect.statements l));
        let perfect = Parse.imperfect "for i = 1 to 3\nA[i] := 1;\nend" in
        check_bool "perfect" true (Imperfect.is_perfect perfect));
    Alcotest.test_case "to_nest on perfect loops" `Quick (fun () ->
        let l =
          Parse.imperfect
            "for i = 1 to 3\nfor j = 1 to 2\nA[i, j] := 1;\nend\nend"
        in
        let n = Imperfect.to_nest l in
        check_int "depth" 2 (Nest.depth n);
        check_int "cardinal" 6 (Nest.cardinal n);
        let imperfect = Parse.imperfect reduction_src in
        Alcotest.check_raises "imperfect rejected"
          (Invalid_argument "Imperfect.to_nest: nest is not perfect")
          (fun () -> ignore (Imperfect.to_nest imperfect)));
    Alcotest.test_case "distribution of the reduction idiom" `Quick (fun () ->
        let l = Parse.imperfect reduction_src in
        let nests = Imperfect.distribute l in
        check_int "two nests" 2 (List.length nests);
        (match nests with
         | [ init_nest; sum_nest ] ->
           check_int "init is 1-deep" 1 (Nest.depth init_nest);
           check_int "sum is 2-deep" 2 (Nest.depth sum_nest)
         | _ -> Alcotest.fail "shape");
        check_bool "legal" true (Distribution.preserves l);
        (match Distribution.distribute_checked l with
         | Ok _ -> ()
         | Error m -> Alcotest.failf "unexpected rejection: %s" m));
    Alcotest.test_case "backward dependence rejected" `Quick (fun () ->
        let l = Parse.imperfect illegal_src in
        check_bool "not preserved" false (Distribution.preserves l);
        (match Distribution.distribute_checked l with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "must reject"));
    Alcotest.test_case "statements after the inner loop" `Quick (fun () ->
        (* Epilogue reading the inner loop's result: forward dependence,
           legal. *)
        let l =
          Parse.imperfect
            {|
for i = 1 to 3
  for j = 1 to 3
    C[i] := C[i] + A[i, j];
  end
  D[i] := C[i] * 2;
end
|}
        in
        let nests = Imperfect.distribute l in
        check_int "two nests" 2 (List.length nests);
        check_bool "legal" true (Distribution.preserves l));
    Alcotest.test_case "validation" `Quick (fun () ->
        Alcotest.check_raises "duplicate index"
          (Invalid_argument "Imperfect: duplicate index i") (fun () ->
            ignore
              (Parse.imperfect
                 "for i = 1 to 2\nfor i = 1 to 2\nA[i] := 1;\nend\nend")));
    Alcotest.test_case "distributed nests reach the analysis" `Quick
      (fun () ->
        (* End-to-end: distribute, then plan each nest. *)
        let l = Parse.imperfect reduction_src in
        match Distribution.distribute_checked l with
        | Error m -> Alcotest.fail m
        | Ok nests ->
          List.iter
            (fun nest ->
              let plan =
                Cf_pipeline.Pipeline.plan
                  ~strategy:Cf_core.Strategy.Duplicate nest
              in
              check_bool "verified" true (Cf_pipeline.Pipeline.verified plan))
            nests);
  ]

let properties =
  [
    qtest "perfect loops distribute to themselves" ~count:60
      (fun nest ->
        (* Rebuild the random perfect nest as an imperfect AST and check
           distribution is the identity (single equal nest). *)
        let rec wrap levels body =
          match levels with
          | [] -> assert false
          | [ (l : Nest.level) ] ->
            {
              Imperfect.var = l.var;
              lower = l.lower;
              upper = l.upper;
              body = List.map (fun s -> Imperfect.Statement s) body;
            }
          | l :: rest ->
            {
              Imperfect.var = l.Nest.var;
              lower = l.lower;
              upper = l.upper;
              body = [ Imperfect.Loop (wrap rest body) ];
            }
        in
        let il =
          wrap (Array.to_list nest.Nest.levels) nest.Nest.body
        in
        Imperfect.is_perfect il
        &&
        match Imperfect.distribute il with
        | [ n ] ->
          Nest.cardinal n = Nest.cardinal nest
          && Cf_exec.Seqexec.equal_on_written (Cf_exec.Seqexec.run n)
               (Cf_exec.Seqexec.run nest)
        | _ -> false)
      arbitrary_nest;
    qtest "disjoint segments always distribute legally" ~count:60
      (fun nest ->
        (* Prologue writing a fresh array P (never read elsewhere) can
           always be split off. *)
        let prologue =
          Stmt.make
            (Aref.make "P" [ Affine.var "i" ])
            (Expr.Const 1)
        in
        let il =
          {
            Imperfect.var = "i";
            lower = Affine.const 1;
            upper = Affine.const 3;
            body =
              [ Imperfect.Statement prologue;
                Imperfect.Loop
                  {
                    Imperfect.var = "j";
                    lower = Affine.const 1;
                    upper = Affine.const 3;
                    body =
                      List.map
                        (fun s -> Imperfect.Statement s)
                        (List.map
                           (fun (s : Stmt.t) ->
                             (* Rename indices of the random body into
                                this nest's (i, j). *)
                             s)
                           nest.Nest.body);
                  };
              ];
          }
        in
        (* The random bodies already use indices i and j. *)
        Distribution.preserves il)
      arbitrary_nest;
  ]

let suites =
  [ ("imperfect", imperfect_cases); ("frontend-properties", properties) ]
