open Cf_pipeline
open Testutil

let pipeline_cases =
  [
    Alcotest.test_case "L1 end-to-end plan" `Quick (fun () ->
        let plan = Pipeline.plan l1 in
        check_int "parallelism" 1 (Pipeline.parallelism plan);
        check_int "blocks" 7 (Pipeline.block_count plan);
        check_bool "verified" true (Pipeline.verified plan));
    Alcotest.test_case "strategy selection changes the plan" `Quick (fun () ->
        let nondup = Pipeline.plan ~strategy:Cf_core.Strategy.Nonduplicate l2 in
        let dup = Pipeline.plan ~strategy:Cf_core.Strategy.Duplicate l2 in
        check_int "nondup sequential" 0 (Pipeline.parallelism nondup);
        check_int "dup fully parallel" 2 (Pipeline.parallelism dup);
        check_int "dup blocks" 16 (Pipeline.block_count dup));
    Alcotest.test_case "minimal strategies populate exact analysis" `Quick
      (fun () ->
        let plan = Pipeline.plan ~strategy:Cf_core.Strategy.Min_duplicate l3 in
        check_bool "exact present" true (plan.Pipeline.exact <> None);
        check_int "parallelism" 1 (Pipeline.parallelism plan);
        let plain = Pipeline.plan l3 in
        check_bool "exact absent" true (plain.Pipeline.exact = None));
    Alcotest.test_case "simulate validates and balances" `Quick (fun () ->
        let plan = Pipeline.plan l1 in
        let sim = Pipeline.simulate ~procs:4 plan in
        check_bool "ok" true (Cf_exec.Parexec.ok sim.Pipeline.report);
        check_int "work conserved" 16
          (Array.fold_left ( + ) 0 sim.Pipeline.balance.Cf_exec.Balance.per_pe);
        check_bool "positive makespan" true (sim.Pipeline.makespan > 0.));
    Alcotest.test_case "charged distribution shows in the makespan" `Quick
      (fun () ->
        let plan = Pipeline.plan l1 in
        let free = Pipeline.simulate ~procs:4 plan in
        let charged =
          Pipeline.simulate ~procs:4 ~with_distribution:true plan
        in
        check_bool "both correct" true
          (Cf_exec.Parexec.ok free.Pipeline.report
           && Cf_exec.Parexec.ok charged.Pipeline.report);
        check_bool "distribution costs time" true
          (charged.Pipeline.makespan > free.Pipeline.makespan);
        check_bool "messages were issued" true
          (Cf_machine.Machine.message_count
             charged.Pipeline.report.Cf_exec.Parexec.machine
           > 0));
    Alcotest.test_case "custom basis is honoured" `Quick (fun () ->
        let plan =
          Pipeline.plan ~basis:[ [| 1; 1; 0 |]; [| -1; 0; 1 |] ] l4
        in
        Alcotest.check
          Alcotest.(array string)
          "paper's variable names" [| "i1'"; "i2'"; "i1" |]
          (Cf_transform.Parloop.names plan.Pipeline.parloop));
    Alcotest.test_case "describe renders everything" `Quick (fun () ->
        let plan = Pipeline.plan l1 in
        let s = Format.asprintf "%a" Pipeline.describe plan in
        let contains needle =
          let nl = String.length needle and hl = String.length s in
          let rec go i =
            i + nl <= hl && (String.sub s i nl = needle || go (i + 1))
          in
          go 0
        in
        check_bool "strategy" true (contains "nonduplicate");
        check_bool "per-array spaces" true (contains "Psi_A");
        check_bool "transformed loop" true (contains "forall"));
  ]

let diagnose_cases =
  [
    Alcotest.test_case "clean loops pass" `Quick (fun () ->
        let issues = Diagnose.check l1 in
        check_bool "usable" true (Diagnose.usable issues);
        check_bool "no errors or warnings" true
          (List.for_all
             (fun (i : Diagnose.issue) -> i.severity = Diagnose.Info)
             issues));
    Alcotest.test_case "non-uniform references are an error" `Quick (fun () ->
        let bad =
          Cf_loop.Parse.nest "for i = 1 to 3\nA[2*i] := A[i] + 1;\nend"
        in
        let issues = Diagnose.check bad in
        check_bool "not usable" false (Diagnose.usable issues);
        check_bool "right code" true
          (List.exists
             (fun (i : Diagnose.issue) -> i.code = "nonuniform-references")
             issues));
    Alcotest.test_case "empty spaces and large spaces flagged" `Quick
      (fun () ->
        let empty = Cf_loop.Parse.nest "for i = 1 to 0\nA[i] := 1;\nend" in
        check_bool "empty is error" false (Diagnose.usable (Diagnose.check empty));
        let big =
          Cf_loop.Parse.nest "for i = 1 to 600\nfor j = 1 to 600\nA[i, j] := 1;\nend\nend"
        in
        check_bool "large is warning" true
          (List.exists
             (fun (i : Diagnose.issue) ->
               i.code = "large-iteration-space"
               && i.severity = Diagnose.Warning)
             (Diagnose.check big)));
    Alcotest.test_case "informational notes" `Quick (fun () ->
        check_bool "L2 singular H_A" true
          (List.exists
             (fun (i : Diagnose.issue) -> i.code = "singular-reference-matrix")
             (Diagnose.check l2));
        check_bool "L2 integer division" true
          (List.exists
             (fun (i : Diagnose.issue) -> i.code = "integer-division")
             (Diagnose.check l2));
        let tri = Cf_workloads.Workloads.triangular_rank1.build ~size:4 in
        check_bool "triangular note" true
          (List.exists
             (fun (i : Diagnose.issue) -> i.code = "non-rectangular")
             (Diagnose.check tri)));
    Alcotest.test_case "out-of-declared-bounds warning" `Quick (fun () ->
        let t =
          Cf_loop.Parse.nest
            "array A[1:4, 1:4];\nfor i = 1 to 4\nfor j = 1 to 4\nA[i, j] := A[i-1, j-1] + 1;\nend\nend"
        in
        check_bool "flagged" true
          (List.exists
             (fun (i : Diagnose.issue) ->
               i.code = "out-of-declared-bounds"
               && i.severity = Diagnose.Warning)
             (Diagnose.check t)));
    Alcotest.test_case "errors sort first" `Quick (fun () ->
        let bad =
          Cf_loop.Parse.nest
            "for i = 1 to 3\nA[2*i] := A[i] / 3;\nend"
        in
        match Diagnose.check bad with
        | { severity = Diagnose.Error; _ } :: _ -> ()
        | _ -> Alcotest.fail "expected error first");
  ]

let properties =
  [
    qtest "plan + simulate is communication-free and correct" ~count:30
      (fun nest ->
        let plan = Pipeline.plan ~strategy:Cf_core.Strategy.Duplicate nest in
        Pipeline.verified plan
        &&
        let sim = Pipeline.simulate ~procs:3 plan in
        Cf_exec.Parexec.ok sim.Pipeline.report)
      arbitrary_nest;
    qtest "parallelism consistent between space and parloop" ~count:40
      (fun nest ->
        let plan = Pipeline.plan nest in
        Pipeline.parallelism plan
        = plan.Pipeline.parloop.Cf_transform.Parloop.n_forall)
      arbitrary_nest;
  ]

let suites =
  [ ("pipeline", pipeline_cases);
    ("diagnose", diagnose_cases);
    ("pipeline-properties", properties) ]
