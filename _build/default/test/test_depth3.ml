(* Property tests over random 3-nested loops: the 2-D generator in
   Testutil cannot exercise partitioning spaces of intermediate
   dimension (0 < dim < n - 1), loop transformation with several inner
   loops, or 3-D Fourier-Motzkin elimination.  Everything here runs the
   same theorem-level checks at depth 3. *)

open Cf_loop
open Cf_core
open Testutil

(* Random uniformly generated 3-nested loops, d = 2 subscripts. *)
let gen_nest3 =
  let open QCheck.Gen in
  let coeff = int_range (-1) 1 in
  let offset = int_range (-2) 2 in
  let gen_h = array_repeat 2 (array_repeat 3 coeff) in
  let nontrivial h = Array.exists (fun row -> Array.exists (( <> ) 0) row) h in
  let gen_h = gen_h >>= fun h -> if nontrivial h then return h else gen_h in
  let vars = [| "i"; "j"; "k" |] in
  let subscript h row c =
    let acc = ref (Affine.const c) in
    Array.iteri
      (fun p v -> acc := Affine.add !acc (Affine.term h.(row).(p) v))
      vars;
    !acc
  in
  let gen_ref name h =
    pair offset offset >|= fun (c0, c1) ->
    Aref.make name [ subscript h 0 c0; subscript h 1 c1 ]
  in
  pair gen_h gen_h >>= fun (ha, hb) ->
  let gen_stmt =
    bool >>= fun lhs_a ->
    gen_ref "A" ha >>= fun ra1 ->
    gen_ref "A" ha >>= fun ra2 ->
    gen_ref "B" hb >>= fun rb ->
    int_range 1 9 >|= fun m ->
    let lhs = if lhs_a then ra1 else rb in
    let rhs =
      Expr.Binop
        ( Expr.Add,
          Expr.Read (if lhs_a then rb else ra1),
          Expr.Binop (Expr.Mul, Expr.Read ra2, Expr.Const m) )
    in
    Stmt.make lhs rhs
  in
  int_range 1 2 >>= fun nstmts ->
  list_repeat nstmts gen_stmt >|= fun body ->
  Nest.rectangular [ ("i", 1, 3); ("j", 1, 3); ("k", 1, 3) ] body

let arbitrary_nest3 =
  QCheck.make ~print:(fun t -> Format.asprintf "%a" Nest.pp t) gen_nest3

let coverage nest pl =
  let got = ref [] in
  Cf_transform.Parloop.iter pl (fun ~block:_ ~iter -> got := iter :: !got);
  List.sort compare !got = List.sort compare (Nest.iterations nest)

let properties =
  [
    qtest "Theorem 1 at depth 3" ~count:40
      (fun nest ->
        match Verify.check_strategy Strategy.Nonduplicate nest with
        | Ok () -> true
        | Error _ -> false)
      arbitrary_nest3;
    qtest "Theorem 2 at depth 3" ~count:40
      (fun nest ->
        match Verify.check_strategy Strategy.Duplicate nest with
        | Ok () -> true
        | Error _ -> false)
      arbitrary_nest3;
    qtest "Theorems 3/4 at depth 3" ~count:25
      (fun nest ->
        (match Verify.check_strategy Strategy.Min_nonduplicate nest with
         | Ok () -> true
         | Error _ -> false)
        &&
        (match Verify.check_strategy Strategy.Min_duplicate nest with
         | Ok () -> true
         | Error _ -> false))
      arbitrary_nest3;
    qtest "transform covers the space at depth 3" ~count:40
      (fun nest ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate nest in
        coverage nest (Cf_transform.Transformer.transform nest psi))
      arbitrary_nest3;
    qtest "duplicate-space transform covers at depth 3" ~count:40
      (fun nest ->
        let psi = Strategy.partitioning_space Strategy.Duplicate nest in
        coverage nest (Cf_transform.Transformer.transform nest psi))
      arbitrary_nest3;
    qtest "parallel = sequential execution at depth 3" ~count:25
      (fun nest ->
        let plan =
          Cf_pipeline.Pipeline.plan ~strategy:Strategy.Duplicate nest
        in
        let sim = Cf_pipeline.Pipeline.simulate ~procs:4 plan in
        Cf_exec.Parexec.ok sim.Cf_pipeline.Pipeline.report)
      arbitrary_nest3;
    qtest "symbolic deps complete wrt exact at depth 3" ~count:40
      (fun nest ->
        let exact = Cf_dep.Exact.analyze nest in
        let key (d : Cf_dep.Analysis.dep) =
          ( d.array,
            (d.src.Nest.stmt_index, d.src.Nest.site_index),
            (d.dst.Nest.stmt_index, d.dst.Nest.site_index),
            d.kind )
        in
        let symbolic =
          List.map key (Cf_dep.Analysis.deps ~search_radius:8 nest)
        in
        List.for_all
          (fun d -> List.mem (key d) symbolic)
          (Cf_dep.Exact.all_deps exact))
      arbitrary_nest3;
    qtest "blocks partition the space at depth 3" ~count:40
      (fun nest ->
        let psi = Strategy.partitioning_space Strategy.Nonduplicate nest in
        let p = Iter_partition.make nest psi in
        let from_blocks =
          Array.to_list (Iter_partition.blocks p)
          |> List.concat_map (fun (b : Iter_partition.block) -> b.iterations)
          |> List.sort compare
        in
        from_blocks = List.sort compare (Nest.iterations nest))
      arbitrary_nest3;
  ]

(* Parser fuzzing: pretty-print random nests and reparse them; the
   round trip must preserve structure and semantics. *)
let fuzz =
  [
    qtest "pp/reparse preserves structure (depth 2)" ~count:120
      (fun nest ->
        let printed = Format.asprintf "@[<v>%a@]" Nest.pp nest in
        let nest' = Parse.nest printed in
        Nest.cardinal nest = Nest.cardinal nest'
        && Nest.arrays nest = Nest.arrays nest'
        && Nest.depth nest = Nest.depth nest')
      arbitrary_nest;
    qtest "pp/reparse preserves semantics (depth 2)" ~count:60
      (fun nest ->
        let printed = Format.asprintf "@[<v>%a@]" Nest.pp nest in
        let nest' = Parse.nest printed in
        Cf_exec.Seqexec.equal_on_written (Cf_exec.Seqexec.run nest)
          (Cf_exec.Seqexec.run nest'))
      arbitrary_nest;
    qtest "pp/reparse preserves structure (depth 3)" ~count:60
      (fun nest ->
        let printed = Format.asprintf "@[<v>%a@]" Nest.pp nest in
        let nest' = Parse.nest printed in
        Nest.cardinal nest = Nest.cardinal nest'
        && Nest.arrays nest = Nest.arrays nest')
      arbitrary_nest3;
    qtest "pp/reparse preserves dependences (depth 2)" ~count:40
      (fun nest ->
        let printed = Format.asprintf "@[<v>%a@]" Nest.pp nest in
        let nest' = Parse.nest printed in
        let key (d : Cf_dep.Analysis.dep) =
          (d.array, d.kind, Array.to_list d.witness)
        in
        List.sort_uniq compare (List.map key (Cf_dep.Analysis.deps nest))
        = List.sort_uniq compare (List.map key (Cf_dep.Analysis.deps nest')))
      arbitrary_nest;
  ]

let suites = [ ("depth3-properties", properties); ("parser-fuzz", fuzz) ]
