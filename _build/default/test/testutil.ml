(* Shared fixtures: the paper's loops L1-L5 and random-nest generators
   for property tests. *)

open Cf_loop

let l1 =
  Parse.nest
    {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[2*i, j] := C[i, j] * 7;
    S2: B[j, i+1] := A[2*i-2, j-1] + C[i-1, j-1];
  end
end
|}

let l2 =
  Parse.nest
    {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[i+j, i+j] := B[2*i, j] * A[i+j-1, i+j];
    S2: A[i+j-1, i+j-1] := B[2*i-1, j-1] / 3;
  end
end
|}

let l3 =
  Parse.nest
    {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[i, j] := A[i-1, j-1] * 3;
    S2: A[i, j-1] := A[i+1, j-2] / 7;
  end
end
|}

let l4 =
  Parse.nest
    {|
for i1 = 1 to 4
  for i2 = 1 to 4
    for i3 = 1 to 4
      A[i1, i2, i3] := A[i1-1, i2+1, i3-1] + B[i1, i2, i3];
    end
  end
end
|}

let l5 ~m = Cf_exec.Matmul.nest ~m

let all_paper_loops =
  [ ("L1", l1); ("L2", l2); ("L3", l3); ("L4", l4); ("L5(4)", l5 ~m:4) ]

(* Random uniformly-generated 2-nested loops for property testing.
   Shapes are kept small so exact (enumeration) analysis stays cheap. *)

let gen_nest =
  let open QCheck.Gen in
  let coeff = int_range (-2) 2 in
  let offset = int_range (-2) 2 in
  let gen_h = array_repeat 2 (array_repeat 2 coeff) in
  let nontrivial h = Array.exists (fun row -> Array.exists (( <> ) 0) row) h in
  let gen_h = gen_h >>= fun h -> if nontrivial h then return h else gen_h in
  let subscript h row c =
    Affine.add
      (Affine.add
         (Affine.term h.(row).(0) "i")
         (Affine.term h.(row).(1) "j"))
      (Affine.const c)
  in
  let gen_ref name h =
    pair offset offset >|= fun (c0, c1) ->
    Aref.make name [ subscript h 0 c0; subscript h 1 c1 ]
  in
  (* Two arrays with independent reference matrices. *)
  pair gen_h gen_h >>= fun (ha, hb) ->
  let gen_stmt =
    (* lhs on A or B, rhs reads a couple of refs. *)
    bool >>= fun lhs_a ->
    gen_ref "A" ha >>= fun ra1 ->
    gen_ref "A" ha >>= fun ra2 ->
    gen_ref "B" hb >>= fun rb ->
    int_range 1 9 >|= fun k ->
    let lhs = if lhs_a then ra1 else rb in
    let rhs =
      Expr.Binop
        ( Expr.Add,
          Expr.Read (if lhs_a then rb else ra1),
          Expr.Binop (Expr.Mul, Expr.Read ra2, Expr.Const k) )
    in
    Stmt.make lhs rhs
  in
  int_range 1 2 >>= fun nstmts ->
  list_repeat nstmts gen_stmt >>= fun body ->
  int_range 3 4 >>= fun ui ->
  int_range 3 4 >|= fun uj ->
  Nest.rectangular [ ("i", 1, ui); ("j", 1, uj) ] body

let arbitrary_nest =
  QCheck.make ~print:(fun t -> Format.asprintf "%a" Nest.pp t) gen_nest

(* Wrap a qcheck test as an alcotest case. *)
let qtest ?(count = 100) name prop arb =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arb prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
