lib/workloads/workloads.mli: Cf_baseline Cf_core Cf_loop Format
