lib/workloads/workloads.ml: Affine Aref Cf_baseline Cf_core Cf_dep Cf_linalg Cf_loop Expr Format Iter_partition List Nest Stmt Strategy Verify
