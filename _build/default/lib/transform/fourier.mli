(** Fourier–Motzkin elimination for loop-bound generation.

    A constraint is an affine form [f] asserting [f(x) ≥ 0] over the
    positional variables [x_0..x_{n−1}] (new loop variables in nest
    order).  Eliminating variables from the innermost outward yields, for
    every nest level [m], the set of lower/upper bound forms in the outer
    variables — exactly the [max(...)]/[min(...)] bounds of the paper's
    transformed loops.  Bounds are rational; integer scanning applies
    [ceil] to lower bounds and [floor] to upper bounds (the standard
    rational-shadow tightening, safe because spurious integer points can
    only produce empty inner ranges and are filtered by the integrality
    guards of {!Parloop}). *)

type level_bounds = {
  lowers : Raffine.t list;
    (** level var ≥ ceil(f(outer vars)) for each f; effective lower bound
        is the max.  Empty means unbounded below (never the case for
        well-formed nests). *)
  uppers : Raffine.t list;
    (** level var ≤ floor(f(outer vars)); effective bound is the min. *)
}

val loop_bounds : nvars:int -> Raffine.t list -> level_bounds array
(** [loop_bounds ~nvars constraints] eliminates [x_{n−1}, ..., x_1] in
    turn and returns per-level bounds; index [m] of the result bounds
    variable [m] in terms of variables [0..m−1].
    Raises [Invalid_argument] when the system is syntactically infeasible
    (a negative constant constraint arises), which cannot happen for a
    non-empty loop nest. *)

val eliminate : var:int -> Raffine.t list -> Raffine.t list
(** One elimination step: the projection of the system onto the other
    variables (constraints not mentioning [var], plus all positive
    pair combinations). *)

val lower_value : Raffine.t list -> int array -> int
(** [lower_value lowers outer] evaluates [max_k ceil(f_k(outer))].
    Raises [Invalid_argument] on an empty list. *)

val upper_value : Raffine.t list -> int array -> int
(** [min_k floor(f_k(outer))]. *)
