(** The Section IV program transformation.

    Given a nest and a partitioning space [Ψ] (from Theorems 1–4), build
    the equivalent [forall] nest:

    + take an integer, gcd-normalized basis [Q] of [Ker(Ψ)] (the paper's
      notation for the orthogonal complement of [Ψ]);
    + bring [Q] to row echelon form, remembering which basis row became
      pivot row [j] (the permutation σ); the pivot columns [y_1 < ... <
      y_k] receive the new forall variables [I'_{y_j} = a_{σ⁻¹(j)} · I]
      (equations (1)–(2));
    + complete with [g] original indices [I_{z_1} < ... < I_{z_g}] whose
      unit vectors are independent of [Q] and the previous choices —
      these stay as the sequential inner loops;
    + derive every loop bound by Fourier–Motzkin elimination of the
      original constraints rewritten over the new variables, and emit
      extended statements for the remaining original indices. *)

open Cf_linalg

val transform : ?basis:int array list -> Cf_loop.Nest.t -> Subspace.t -> Parloop.t
(** [transform nest psi] builds the parallel form.  [basis], when given,
    overrides the computed basis of [Ker(Ψ)] (it must span exactly the
    orthogonal complement of [psi] — this lets callers reproduce the
    paper's exact variable choices, e.g. loop L4′).
    Raises [Invalid_argument] on a dimension mismatch or an invalid
    basis. *)

val echelon_with_provenance :
  int array list -> (int * int array) list
(** [echelon_with_provenance rows] returns, per echelon step [j], the
    pair [(y_j, a_{σ⁻¹(j)})]: the pivot column and the *original* row
    that was chosen as pivot at that step, in ascending [y] order.
    Exposed for tests. *)

val completion : n:int -> int array list -> int array
(** [completion ~n rows] is the ascending list of positions [z] whose
    unit vectors greedily complete [span rows] to Q^n (exposed for
    tests). *)
