(** Rational affine forms over a positional variable vector.

    The loop transformation of Section IV works in a fixed coordinate
    system (the new loop variables in nest order), so affine forms here
    are positional: [coeffs.(k)] multiplies variable [k].  Coefficients
    are rational because the inverse index transformation [M⁻¹] need not
    be integral. *)

open Cf_rational
open Cf_linalg

type t = { coeffs : Vec.t; const : Rat.t }

val make : Vec.t -> Rat.t -> t
val const : int -> int -> t
(** [const n c]: the constant [c] over [n] variables. *)

val var : int -> int -> t
(** [var n k]: variable [k] of [n]. *)

val nvars : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val equal : t -> t -> bool

val coeff : t -> int -> Rat.t
val is_constant : t -> bool

val eval : t -> Rat.t array -> Rat.t
val eval_int : t -> int array -> Rat.t

val last_var_with_nonzero : t -> int option
(** Highest variable index with a nonzero coefficient. *)

val drop_var : t -> int -> t
(** [drop_var f k] zeroes coefficient [k] (used after substitution). *)

val of_int_affine : string array -> Cf_loop.Affine.t -> t
(** Interpret an integer affine expression positionally w.r.t. the given
    variable order. *)

val pp : names:string array -> Format.formatter -> t -> unit
(** Prints e.g. [i1' - 2*i2 + 1/2]. *)
