open Cf_rational

type level_bounds = {
  lowers : Raffine.t list;
  uppers : Raffine.t list;
}

let dedupe fs =
  List.fold_left
    (fun acc f -> if List.exists (Raffine.equal f) acc then acc else f :: acc)
    [] fs
  |> List.rev

let split ~var fs =
  List.fold_left
    (fun (pos, neg, rest) f ->
      let a = Raffine.coeff f var in
      if Rat.is_zero a then (pos, neg, f :: rest)
      else if Rat.sign a > 0 then ((a, Raffine.drop_var f var) :: pos, neg, rest)
      else (pos, (a, Raffine.drop_var f var) :: neg, rest))
    ([], [], []) fs

let check_feasible fs =
  List.iter
    (fun f ->
      if Raffine.is_constant f && Rat.sign f.Raffine.const < 0 then
        invalid_arg "Fourier: infeasible constraint system")
    fs

let eliminate ~var fs =
  let pos, neg, rest = split ~var fs in
  let combined =
    List.concat_map
      (fun (a, fpos) ->
        (* a·x + fpos ≥ 0, a > 0  →  x ≥ −fpos/a *)
        List.map
          (fun (b, fneg) ->
            (* b·x + fneg ≥ 0, b < 0  →  x ≤ fneg/(−b);
               combine: fneg/(−b) − (−fpos/a) ≥ 0, scaled by a·(−b) > 0:
               a·fneg + (−b)·fpos ≥ 0. *)
            Raffine.add
              (Raffine.scale a fneg)
              (Raffine.scale (Rat.neg b) fpos))
          neg)
      pos
  in
  dedupe (List.rev rest @ combined)

(* Collapse the constant candidates of a max (resp. min) bound list into
   the single strongest one; keeps renderings close to the paper's. *)
let collapse ~strongest fs =
  let consts, rest =
    List.partition (fun f -> Raffine.is_constant f) fs
  in
  match consts with
  | [] | [ _ ] -> fs
  | c :: cs ->
    let best =
      List.fold_left
        (fun acc f ->
          if strongest f.Raffine.const acc.Raffine.const then f else acc)
        c cs
    in
    rest @ [ best ]

let loop_bounds ~nvars constraints =
  check_feasible constraints;
  let bounds = Array.make nvars { lowers = []; uppers = [] } in
  let current = ref (dedupe constraints) in
  for m = nvars - 1 downto 0 do
    let pos, neg, _ = split ~var:m !current in
    let lowers =
      List.map (fun (a, f) -> Raffine.scale (Rat.inv a) (Raffine.neg f)) pos
    in
    let uppers =
      List.map (fun (b, f) -> Raffine.scale (Rat.inv (Rat.neg b)) f) neg
    in
    bounds.(m) <-
      {
        lowers = collapse ~strongest:Rat.( > ) (dedupe lowers);
        uppers = collapse ~strongest:Rat.( < ) (dedupe uppers);
      };
    current := eliminate ~var:m !current;
    check_feasible !current
  done;
  bounds

let lower_value lowers outer =
  match lowers with
  | [] -> invalid_arg "Fourier.lower_value: unbounded"
  | l ->
    List.fold_left
      (fun acc f -> Stdlib.max acc (Rat.ceil (Raffine.eval_int f outer)))
      min_int l

let upper_value uppers outer =
  match uppers with
  | [] -> invalid_arg "Fourier.upper_value: unbounded"
  | l ->
    List.fold_left
      (fun acc f -> Stdlib.min acc (Rat.floor (Raffine.eval_int f outer)))
      max_int l
