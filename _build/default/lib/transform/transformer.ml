open Cf_rational
open Cf_linalg
open Cf_loop

let normalize_row r =
  let g = Array.fold_left Oint.gcd 0 r in
  if g = 0 || g = 1 then Array.copy r else Array.map (fun x -> x / g) r

let echelon_with_provenance rows =
  let rows = List.map normalize_row rows in
  (match rows with
   | [] -> ()
   | r :: _ ->
     if Array.length r = 0 then invalid_arg "echelon_with_provenance");
  let n = match rows with [] -> 0 | r :: _ -> Array.length r in
  let remaining =
    ref (List.map (fun r -> (r, Vec.of_int_array r)) rows)
  in
  let out = ref [] in
  for c = 0 to n - 1 do
    match
      List.find_opt (fun (_, w) -> not (Rat.is_zero w.(c))) !remaining
    with
    | None -> ()
    | Some ((orig, wpiv) as pivot) ->
      out := (c, orig) :: !out;
      remaining :=
        List.filter_map
          (fun ((o, w) as row) ->
            if row == pivot then None
            else if Rat.is_zero w.(c) then Some (o, w)
            else
              let f = Rat.div w.(c) wpiv.(c) in
              Some (o, Vec.sub w (Vec.scale f wpiv)))
          !remaining
  done;
  if !remaining <> [] then
    invalid_arg "echelon_with_provenance: dependent rows";
  List.rev !out

let completion ~n rows =
  let s = ref (Subspace.span n (List.map Vec.of_int_array rows)) in
  let picked = ref [] in
  for p = 0 to n - 1 do
    let e = Vec.basis n p in
    if not (Subspace.mem !s e) then begin
      picked := p :: !picked;
      s := Subspace.add_vector !s e
    end
  done;
  Array.of_list (List.rev !picked)

(* Rewrite an integer affine expression over the original indices into a
   rational affine form over the new variables, using I_i = orig_of_new.(i). *)
let reexpress ~order ~orig_of_new (e : Affine.t) =
  let coeffs, const = Affine.coeff_vector order e in
  let n = Array.length orig_of_new in
  let acc = ref (Raffine.const n const) in
  Array.iteri
    (fun i c ->
      if c <> 0 then
        acc := Raffine.add !acc (Raffine.scale (Rat.of_int c) orig_of_new.(i)))
    coeffs;
  !acc

let transform ?basis nest psi =
  let n = Nest.depth nest in
  if Subspace.ambient_dim psi <> n then
    invalid_arg "Transformer.transform: ambient dimension mismatch";
  let complement = Subspace.complement psi in
  let k = Subspace.dim complement in
  let rows =
    match basis with
    | None -> Subspace.int_basis complement
    | Some rows ->
      let given = Subspace.span n (List.map Vec.of_int_array rows) in
      if not (Subspace.equal given complement) then
        invalid_arg "Transformer.transform: basis does not span Ker(Psi)";
      List.map normalize_row rows
  in
  let prov = echelon_with_provenance rows in
  assert (List.length prov = k);
  let z = completion ~n rows in
  let order = Nest.indices nest in
  let forall_rows = List.map (fun (_, a) -> Vec.of_int_array a) prov in
  let inner_rows = List.map (fun p -> Vec.basis n p) (Array.to_list z) in
  let forward = Mat.of_rows (forall_rows @ inner_rows) in
  let inverse =
    match Mat.inverse forward with
    | Some m -> m
    | None -> invalid_arg "Transformer.transform: singular index change"
  in
  let orig_of_new =
    Array.init n (fun i -> Raffine.make (Mat.row inverse i) Rat.zero)
  in
  let constraints =
    List.concat
      (List.mapi
         (fun kk (l : Nest.level) ->
           let this = Raffine.make (Mat.row inverse kk) Rat.zero in
           let lower = reexpress ~order ~orig_of_new l.lower in
           let upper = reexpress ~order ~orig_of_new l.upper in
           [ Raffine.sub this lower; Raffine.sub upper this ])
         (Array.to_list nest.Nest.levels))
  in
  let bounds = Fourier.loop_bounds ~nvars:n constraints in
  let names =
    Array.init n (fun m ->
        if m < k then
          let y, _ = List.nth prov m in
          order.(y) ^ "'"
        else order.(z.(m - k)))
  in
  let levels =
    Array.init n (fun m ->
        {
          Parloop.name = names.(m);
          role = (if m < k then Parloop.Forall else Parloop.Sequential);
          bounds = bounds.(m);
        })
  in
  {
    Parloop.source = nest;
    space = psi;
    levels;
    n_forall = k;
    forward;
    inverse;
    orig_of_new;
    inner_positions = z;
  }
