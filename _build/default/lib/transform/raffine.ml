open Cf_rational
open Cf_linalg

type t = { coeffs : Vec.t; const : Rat.t }

let make coeffs const = { coeffs = Vec.copy coeffs; const }
let const n c = { coeffs = Vec.zero n; const = Rat.of_int c }

let var n k =
  if k < 0 || k >= n then invalid_arg "Raffine.var";
  { coeffs = Vec.basis n k; const = Rat.zero }

let nvars f = Vec.dim f.coeffs
let add a b = { coeffs = Vec.add a.coeffs b.coeffs; const = Rat.add a.const b.const }
let neg a = { coeffs = Vec.neg a.coeffs; const = Rat.neg a.const }
let sub a b = add a (neg b)
let scale k a = { coeffs = Vec.scale k a.coeffs; const = Rat.mul k a.const }
let equal a b = Vec.equal a.coeffs b.coeffs && Rat.equal a.const b.const
let coeff f k = f.coeffs.(k)
let is_constant f = Vec.is_zero f.coeffs
let eval f xs = Rat.add f.const (Vec.dot f.coeffs xs)
let eval_int f xs = eval f (Vec.of_int_array xs)

let last_var_with_nonzero f =
  let rec go k =
    if k < 0 then None
    else if not (Rat.is_zero f.coeffs.(k)) then Some k
    else go (k - 1)
  in
  go (Vec.dim f.coeffs - 1)

let drop_var f k =
  let c = Vec.copy f.coeffs in
  c.(k) <- Rat.zero;
  { f with coeffs = c }

let of_int_affine order a =
  let v, c = Cf_loop.Affine.coeff_vector order a in
  { coeffs = Vec.of_int_array v; const = Rat.of_int c }

let pp ~names ppf f =
  let n = Vec.dim f.coeffs in
  let started = ref false in
  let emit_sign ppf neg =
    if !started then Format.fprintf ppf (if neg then " - " else " + ")
    else if neg then Format.fprintf ppf "-"
  in
  for k = 0 to n - 1 do
    let c = f.coeffs.(k) in
    if not (Rat.is_zero c) then begin
      emit_sign ppf (Rat.sign c < 0);
      let m = Rat.abs c in
      if Rat.equal m Rat.one then Format.fprintf ppf "%s" names.(k)
      else Format.fprintf ppf "%a*%s" Rat.pp m names.(k);
      started := true
    end
  done;
  if not (Rat.is_zero f.const) then begin
    emit_sign ppf (Rat.sign f.const < 0);
    Format.fprintf ppf "%a" Rat.pp (Rat.abs f.const);
    started := true
  end;
  if not !started then Format.fprintf ppf "0"
