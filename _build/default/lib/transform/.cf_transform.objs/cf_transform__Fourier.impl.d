lib/transform/fourier.ml: Array Cf_rational List Raffine Rat Stdlib
