lib/transform/fourier.mli: Raffine
