lib/transform/raffine.mli: Cf_linalg Cf_loop Cf_rational Format Rat Vec
