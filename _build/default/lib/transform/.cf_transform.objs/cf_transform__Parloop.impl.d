lib/transform/parloop.ml: Array Cf_linalg Cf_loop Cf_rational Format Fourier Hashtbl List Mat Nest Oint Printf Raffine Rat Stmt String Subspace Vec
