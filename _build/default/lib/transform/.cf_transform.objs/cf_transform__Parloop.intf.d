lib/transform/parloop.mli: Cf_linalg Cf_loop Format Fourier Mat Raffine Subspace
