lib/transform/raffine.ml: Array Cf_linalg Cf_loop Cf_rational Format Rat Vec
