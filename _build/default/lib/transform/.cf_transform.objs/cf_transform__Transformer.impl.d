lib/transform/transformer.ml: Affine Array Cf_linalg Cf_loop Cf_rational Fourier List Mat Nest Oint Parloop Raffine Rat Subspace Vec
