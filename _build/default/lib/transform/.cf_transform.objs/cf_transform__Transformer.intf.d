lib/transform/transformer.mli: Cf_linalg Cf_loop Parloop Subspace
