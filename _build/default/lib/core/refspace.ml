open Cf_linalg
open Cf_loop
open Cf_dep

let kernel_basis nest name =
  let h = Nest.h_matrix nest name in
  let m = Mat.of_rows (Array.to_list (Array.map Vec.of_int_array h)) in
  Mat.kernel m

let reference_space ?search_radius nest name =
  let n = Nest.depth nest in
  let h = Nest.h_matrix nest name in
  let halfwidths = Nest.extent_halfwidths nest in
  let admissible =
    List.filter_map
      (fun r -> Witness.realizable ?search_radius ~h ~halfwidths r)
      (Analysis.data_referenced_vectors nest name)
  in
  Subspace.span n
    (kernel_basis nest name @ List.map Vec.of_int_array admissible)

let reduced_reference_space ?search_radius nest name =
  let n = Nest.depth nest in
  match Analysis.duplicability ?search_radius nest name with
  | Analysis.Fully -> Subspace.zero n
  | Analysis.Partially ->
    let flows =
      List.filter_map
        (fun (d : Analysis.dep) ->
          if Kind.equal d.kind Kind.Flow then Some (Vec.of_int_array d.witness)
          else None)
        (Analysis.deps_of_array ?search_radius nest name)
    in
    Subspace.span n (kernel_basis nest name @ flows)

let minimal_space_of_vectors exact name kinds =
  let nest = Exact.nest exact in
  let n = Nest.depth nest in
  Subspace.span n
    (List.map Vec.of_int_array (Exact.useful_vectors ~kinds exact name))

let minimal_reference_space exact name =
  minimal_space_of_vectors exact name
    [ Kind.Flow; Kind.Anti; Kind.Output; Kind.Input ]

let minimal_reduced_reference_space exact name =
  minimal_space_of_vectors exact name [ Kind.Flow ]
