(** Data partitions [P_Ψ(A)] (Definition 3).

    Data block [B^A_j] holds every element [H_A·ī + c̄_l] referenced by
    some iteration [ī] of iteration block [B_j].  Under the nonduplicate
    strategy the blocks are pairwise disjoint (Theorem 1 guarantees it);
    under duplication an element may appear in several blocks and the
    copy counts are reported. *)

type t

val make : Cf_loop.Nest.t -> Iter_partition.t -> string -> t
(** Data partition of one array of the nest, following the given
    iteration partition. *)

val array_name : t -> string

val block : t -> int -> int array list
(** [block t j] is data block [B^A_j] for iteration block id [j]
    (1-based); elements sorted lexicographically, deduplicated. *)

val block_count : t -> int

val elements : t -> int array list
(** Every element referenced by the loop, sorted, deduplicated. *)

val copies : t -> (int array * int) list
(** Element -> number of data blocks containing it. *)

val duplicated : t -> (int array * int) list
(** Elements with more than one copy. *)

val is_disjoint : t -> bool
(** True when no element is duplicated (nonduplicate regime). *)

val total_copy_count : t -> int
(** Sum of block sizes = storage with duplication. *)

val owner : t -> int array -> int list
(** Block ids holding the element (empty when untouched by the loop). *)

val pp : Format.formatter -> t -> unit
