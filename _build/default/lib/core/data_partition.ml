open Cf_loop

type t = {
  array : string;
  blocks : int array list array;  (** index j-1 = data block of B_j *)
  owners : (int list, int list) Hashtbl.t;  (** element -> block ids *)
}

let compare_elem (a : int array) b = Stdlib.compare a b

let make nest partition name =
  let order = Nest.indices nest in
  let sites = Nest.sites_of_array nest name in
  let hcs =
    List.map (fun (s : Nest.ref_site) -> Aref.matrix order s.aref) sites
  in
  (* Deduplicate (H, c) pairs: distinct sites with equal refs touch equal
     elements. *)
  let hcs =
    List.fold_left
      (fun acc hc -> if List.mem hc acc then acc else hc :: acc)
      [] hcs
  in
  let iter_blocks = Iter_partition.blocks partition in
  let owners = Hashtbl.create 256 in
  let blocks =
    Array.map
      (fun (b : Iter_partition.block) ->
        let set = Hashtbl.create 64 in
        List.iter
          (fun iter ->
            List.iter
              (fun (h, c) ->
                let el =
                  Array.to_list
                    (Array.mapi
                       (fun p row ->
                         let acc = ref c.(p) in
                         Array.iteri
                           (fun k a -> acc := !acc + (a * iter.(k)))
                           row;
                         !acc)
                       h)
                in
                if not (Hashtbl.mem set el) then Hashtbl.replace set el ())
              hcs)
          b.iterations;
        let els = Hashtbl.fold (fun el () acc -> el :: acc) set [] in
        List.iter
          (fun el ->
            let prev =
              match Hashtbl.find_opt owners el with Some l -> l | None -> []
            in
            Hashtbl.replace owners el (prev @ [ b.id ]))
          (List.sort compare els);
        List.sort compare els |> List.map Array.of_list)
      iter_blocks
  in
  { array = name; blocks; owners }

let array_name t = t.array

let block t j =
  if j < 1 || j > Array.length t.blocks then
    invalid_arg "Data_partition.block: bad block id";
  t.blocks.(j - 1)

let block_count t = Array.length t.blocks

let elements t =
  Hashtbl.fold (fun el _ acc -> Array.of_list el :: acc) t.owners []
  |> List.sort compare_elem

let copies t =
  Hashtbl.fold
    (fun el ids acc -> (Array.of_list el, List.length ids) :: acc)
    t.owners []
  |> List.sort (fun (a, _) (b, _) -> compare_elem a b)

let duplicated t = List.filter (fun (_, n) -> n > 1) (copies t)
let is_disjoint t = duplicated t = []

let total_copy_count t =
  Array.fold_left (fun acc b -> acc + List.length b) 0 t.blocks

let owner t el =
  match Hashtbl.find_opt t.owners (Array.to_list el) with
  | Some ids -> ids
  | None -> []

let pp ppf t =
  Format.fprintf ppf "@[<v>data partition of %s: %d block(s)@," t.array
    (block_count t);
  Array.iteri
    (fun k els ->
      Format.fprintf ppf "  B^%s_%d: %a@," t.array (k + 1)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           Cf_linalg.Vec.pp_int)
        els)
    t.blocks;
  Format.fprintf ppf "@]"
