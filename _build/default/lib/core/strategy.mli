(** Partitioning strategies and their partitioning spaces (Theorems 1–4).

    The partitioning space of a nest is the join of the per-array
    (reduced / minimal) reference spaces; partitioning the iteration
    space by it is communication-free under the corresponding data-copy
    regime.  [dim Ψ = n] means sequential execution; smaller dimensions
    leave [n − dim Ψ] parallel dimensions. *)

open Cf_linalg

type t =
  | Nonduplicate      (** Theorem 1: single copy of every element *)
  | Duplicate         (** Theorem 2: replication allowed, flow deps only *)
  | Min_nonduplicate  (** Theorem 3: after redundancy elimination *)
  | Min_duplicate     (** Theorem 4: after elimination, flow deps only *)

val all : t list
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val uses_exact_analysis : t -> bool
(** The minimal strategies require the enumeration-based analysis. *)

val partitioning_space :
  ?search_radius:int -> ?exact:Cf_dep.Exact.result -> t -> Cf_loop.Nest.t ->
  Subspace.t
(** [partitioning_space strategy nest] is [Ψ] of the chosen theorem.
    For the minimal strategies an {!Cf_dep.Exact.result} is computed on
    demand when not supplied (the iteration space must then be small
    enough to enumerate). *)

val parallelism_degree : Subspace.t -> int
(** [n − dim Ψ], the number of forall dimensions the transformed loop
    will expose. *)

val array_space :
  ?search_radius:int -> ?exact:Cf_dep.Exact.result -> t -> Cf_loop.Nest.t ->
  string -> Subspace.t
(** The per-array space the strategy joins ([Ψ_A], [Ψ^r_A], ...). *)

val selective_space :
  ?search_radius:int -> Cf_loop.Nest.t -> duplicated:string list -> Subspace.t
(** Partial duplication (the L5′ construction of Section IV): arrays in
    [duplicated] contribute their reduced reference spaces [Ψ^r_A], the
    others their full [Ψ_A].  [duplicated = []] is Theorem 1;
    duplicating everything is Theorem 2.  Partitioning by the result is
    communication-free provided the duplicated arrays are actually
    replicated wherever referenced. *)
