open Cf_loop
open Cf_dep

type violation = {
  array : string;
  element : int array;
  src_iter : int array;
  dst_iter : int array;
  src_block : int;
  dst_block : int;
  kind : Kind.t;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s%a: %a (B%d) -%a-> %a (B%d)" v.array
    Cf_linalg.Vec.pp_int v.element Cf_linalg.Vec.pp_int v.src_iter v.src_block
    Kind.pp v.kind Cf_linalg.Vec.pp_int v.dst_iter v.dst_block

(* Under the duplicate regime only flow dependences must stay local.
   Under nonduplicate, every pair of accesses to an element shares its
   single home block; it suffices to check consecutive accesses. *)
let violations ?exact strategy partition =
  let nest = Iter_partition.nest partition in
  let exact = match exact with Some e -> e | None -> Exact.analyze nest in
  let filter_redundant = Strategy.uses_exact_analysis strategy in
  let duplicate =
    match strategy with
    | Strategy.Duplicate | Strategy.Min_duplicate -> true
    | Strategy.Nonduplicate | Strategy.Min_nonduplicate -> false
  in
  let block_of iter = Iter_partition.block_id_of_iteration partition iter in
  let out = ref [] in
  List.iter
    (fun ((array, element), events) ->
      let events =
        if filter_redundant then
          List.filter (fun (e : Exact.access_event) -> not e.redundant) events
        else events
      in
      if duplicate then begin
        (* Each read must see the latest preceding write locally. *)
        let last_write = ref None in
        List.iter
          (fun (e : Exact.access_event) ->
            match e.access with
            | Nest.Write -> last_write := Some e
            | Nest.Read -> (
              match !last_write with
              | None -> ()
              | Some w ->
                let bw = block_of w.iter and br = block_of e.iter in
                if bw <> br then
                  out :=
                    {
                      array;
                      element;
                      src_iter = w.iter;
                      dst_iter = e.iter;
                      src_block = bw;
                      dst_block = br;
                      kind = Kind.Flow;
                    }
                    :: !out))
          events
      end
      else begin
        (* All accesses in one block: flag consecutive block changes. *)
        let prev = ref None in
        List.iter
          (fun (e : Exact.access_event) ->
            let b = block_of e.iter in
            (match !prev with
             | Some (pe, pb) when pb <> b ->
               let kind =
                 Kind.of_accesses ~src:pe.Exact.access ~dst:e.access
               in
               out :=
                 {
                   array;
                   element;
                   src_iter = pe.Exact.iter;
                   dst_iter = e.iter;
                   src_block = pb;
                   dst_block = b;
                   kind;
                 }
                 :: !out
             | _ -> ());
            prev := Some (e, b))
          events
      end)
    (Exact.timelines exact);
  List.rev !out

let communication_free ?exact strategy partition =
  violations ?exact strategy partition = []

let check_strategy ?search_radius strategy nest =
  let exact =
    if Strategy.uses_exact_analysis strategy then Some (Exact.analyze nest)
    else None
  in
  let psi = Strategy.partitioning_space ?search_radius ?exact strategy nest in
  let partition = Iter_partition.make nest psi in
  match violations ?exact strategy partition with
  | [] -> Ok ()
  | vs -> Error vs

let is_minimal ?exact strategy nest psi =
  let exact =
    match exact with
    | Some e -> e
    | None -> Exact.analyze nest
  in
  let free space =
    communication_free ~exact strategy (Iter_partition.make nest space)
  in
  free psi
  && List.for_all
       (fun v ->
         let rest =
           List.filter
             (fun w -> not (Cf_linalg.Vec.equal v w))
             (Cf_linalg.Subspace.basis psi)
         in
         let reduced =
           Cf_linalg.Subspace.span (Cf_linalg.Subspace.ambient_dim psi) rest
         in
         not (free reduced))
       (Cf_linalg.Subspace.basis psi)
