lib/core/refspace.ml: Analysis Array Cf_dep Cf_linalg Cf_loop Exact Kind List Mat Nest Subspace Vec Witness
