lib/core/strategy.mli: Cf_dep Cf_linalg Cf_loop Format Subspace
