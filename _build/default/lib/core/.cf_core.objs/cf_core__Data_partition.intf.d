lib/core/data_partition.mli: Cf_loop Format Iter_partition
