lib/core/verify.ml: Cf_dep Cf_linalg Cf_loop Exact Format Iter_partition Kind List Nest Strategy
