lib/core/data_partition.ml: Aref Array Cf_linalg Cf_loop Format Hashtbl Iter_partition List Nest Stdlib
