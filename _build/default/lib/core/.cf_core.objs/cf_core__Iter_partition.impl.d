lib/core/iter_partition.ml: Array Cf_linalg Cf_loop Cf_rational Format Hashtbl List Nest Rat Stdlib String Subspace Vec
