lib/core/refspace.mli: Cf_dep Cf_linalg Cf_loop Exact Subspace
