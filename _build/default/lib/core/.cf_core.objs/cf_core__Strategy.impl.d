lib/core/strategy.ml: Cf_dep Cf_linalg Cf_loop Format List Nest Refspace Subspace
