lib/core/verify.mli: Cf_dep Cf_linalg Cf_loop Exact Format Iter_partition Kind Strategy
