lib/core/iter_partition.mli: Cf_linalg Cf_loop Format Subspace
