(** Executable verification of Theorems 1–4.

    The theorems assert that partitioning by the strategy's space incurs
    no interblock communication.  This module checks the claim on the
    concrete iteration space:

    - {e nonduplicate}: every access (by a surviving computation) to an
      element must happen in one block — the element has a single home;
    - {e duplicate}: every read must be co-located with the most recent
      preceding write of the same element (flow dependences are local;
      everything else is satisfied by replicated copies).

    The minimal strategies run the same checks on the computations that
    survive redundancy elimination.  Minimality itself is checked
    destructively: removing any basis vector from [Ψ] must produce
    violations. *)

open Cf_dep

type violation = {
  array : string;
  element : int array;
  src_iter : int array;
  dst_iter : int array;
  src_block : int;
  dst_block : int;
  kind : Kind.t;
}

val pp_violation : Format.formatter -> violation -> unit

val violations :
  ?exact:Exact.result -> Strategy.t -> Iter_partition.t -> violation list
(** All cross-block dependence pairs the strategy's copy regime cannot
    absorb.  Empty means communication-free. *)

val communication_free :
  ?exact:Exact.result -> Strategy.t -> Iter_partition.t -> bool

val check_strategy :
  ?search_radius:int -> Strategy.t -> Cf_loop.Nest.t -> (unit, violation list) result
(** End-to-end: compute the strategy's partitioning space, materialize
    the partition, and verify.  [Ok ()] reproduces the theorem on this
    nest. *)

val is_minimal :
  ?exact:Exact.result -> Strategy.t -> Cf_loop.Nest.t -> Cf_linalg.Subspace.t ->
  bool
(** True when dropping any single basis vector of the space breaks
    communication freedom (and the space itself does not). *)
