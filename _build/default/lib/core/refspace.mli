(** Reference spaces of arrays (Definition 4 and its refinements).

    For an array [A] with reference matrix [H_A] and data-referenced
    vectors [r̄_1..r̄_m], the {e reference space} is

    [Ψ_A = span(β ∪ {t̄_1, ..., t̄_m})]

    where [β] is a basis of [Ker(H_A)] over Q and [t̄_j] is a particular
    solution of [H_A·t = r̄_j] admitted only when an integer solution
    exists that is realizable as an in-bounds iteration difference
    (conditions (1) and (2) of Definition 4).  Partitioning the iteration
    space by [Ψ_A] severs no dependence of [A].

    The {e reduced} space (Sec. III.B) keeps only solutions that induce
    flow dependences — with data duplication nothing else forces
    co-location.  The {e minimal} spaces (Sec. III.C) keep only vectors
    of *useful* dependences, i.e. those that survive redundant-computation
    elimination. *)

open Cf_linalg
open Cf_dep

val reference_space : ?search_radius:int -> Cf_loop.Nest.t -> string -> Subspace.t
(** [Ψ_A] per Definition 4.  Requires uniformly generated references. *)

val reduced_reference_space :
  ?search_radius:int -> Cf_loop.Nest.t -> string -> Subspace.t
(** [Ψ^r_A] per Sec. III.B: [span(∅)] for a fully duplicable array (no
    flow dependence — replication makes every other dependence local);
    for a partially duplicable array, the kernel basis [β] together with
    the particular solutions that lead to flow dependences. *)

val minimal_reference_space : Exact.result -> string -> Subspace.t
(** [Ψ^min_A]: span of the observed useful dependence vectors (all four
    kinds) after redundancy elimination. *)

val minimal_reduced_reference_space : Exact.result -> string -> Subspace.t
(** [Ψ^min^r_A]: span of the observed useful *flow* dependence vectors. *)
