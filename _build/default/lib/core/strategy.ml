open Cf_linalg
open Cf_loop

type t = Nonduplicate | Duplicate | Min_nonduplicate | Min_duplicate

let all = [ Nonduplicate; Duplicate; Min_nonduplicate; Min_duplicate ]

let to_string = function
  | Nonduplicate -> "nonduplicate"
  | Duplicate -> "duplicate"
  | Min_nonduplicate -> "min-nonduplicate"
  | Min_duplicate -> "min-duplicate"

let pp ppf s = Format.pp_print_string ppf (to_string s)

let uses_exact_analysis = function
  | Nonduplicate | Duplicate -> false
  | Min_nonduplicate | Min_duplicate -> true

let array_space ?search_radius ?exact strategy nest name =
  match strategy with
  | Nonduplicate -> Refspace.reference_space ?search_radius nest name
  | Duplicate -> Refspace.reduced_reference_space ?search_radius nest name
  | Min_nonduplicate | Min_duplicate ->
    let exact =
      match exact with Some e -> e | None -> Cf_dep.Exact.analyze nest
    in
    if strategy = Min_nonduplicate then
      Refspace.minimal_reference_space exact name
    else Refspace.minimal_reduced_reference_space exact name

let partitioning_space ?search_radius ?exact strategy nest =
  let exact =
    match (exact, uses_exact_analysis strategy) with
    | (Some _ as e), _ -> e
    | None, true -> Some (Cf_dep.Exact.analyze nest)
    | None, false -> None
  in
  List.fold_left
    (fun acc name ->
      Subspace.join acc (array_space ?search_radius ?exact strategy nest name))
    (Subspace.zero (Nest.depth nest))
    (Nest.arrays nest)

let selective_space ?search_radius nest ~duplicated =
  List.fold_left
    (fun acc name ->
      let space =
        if List.mem name duplicated then
          Refspace.reduced_reference_space ?search_radius nest name
        else Refspace.reference_space ?search_radius nest name
      in
      Subspace.join acc space)
    (Subspace.zero (Nest.depth nest))
    (Nest.arrays nest)

let parallelism_degree psi = Subspace.ambient_dim psi - Subspace.dim psi
