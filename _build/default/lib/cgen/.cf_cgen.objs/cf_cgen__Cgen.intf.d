lib/cgen/cgen.mli: Cf_transform
