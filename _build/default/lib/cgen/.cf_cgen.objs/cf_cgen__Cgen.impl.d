lib/cgen/cgen.ml: Affine Aref Array Buffer Cf_core Cf_exec Cf_loop Cf_rational Cf_transform Char Expr Format Hashtbl List Nest Oint Printf Rat Stmt String
