(** Interpreter-checked loop distribution.

    {!Cf_loop.Imperfect.distribute} proposes the perfect nests; this
    module decides whether running them one after another preserves the
    original imperfect nest's semantics — exactly, for the given bounds,
    by comparing reference interpretations.  (Distribution is illegal
    precisely when some dependence flows from a later nest back into an
    earlier one; checking by execution avoids approximating that test.) *)

open Cf_loop

val run :
  ?init:(string -> int array -> int) ->
  ?scalar:(string -> int) ->
  Imperfect.loop ->
  Cf_exec.Seqexec.memory
(** Reference interpretation of the imperfect nest: statements and
    inner loops interleave as written, iterations in order. *)

val run_distributed :
  ?init:(string -> int array -> int) ->
  ?scalar:(string -> int) ->
  Nest.t list ->
  Cf_exec.Seqexec.memory
(** Sequential execution of the nests in order; each nest sees the
    previous nests' writes. *)

val preserves :
  ?init:(string -> int array -> int) ->
  ?scalar:(string -> int) ->
  Imperfect.loop ->
  bool
(** True when distribution leaves every written element with the final
    value of the original execution. *)

val distribute_checked :
  Imperfect.loop -> (Nest.t list, string) result
(** {!Cf_loop.Imperfect.distribute} guarded by {!preserves}. *)
