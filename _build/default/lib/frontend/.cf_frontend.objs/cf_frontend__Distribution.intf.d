lib/frontend/distribution.mli: Cf_exec Cf_loop Imperfect Nest
