lib/frontend/distribution.ml: Affine Aref Array Cf_exec Cf_loop Expr Hashtbl Imperfect List Stmt
