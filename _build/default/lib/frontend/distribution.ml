open Cf_loop

let run ?(init = Cf_exec.Seqexec.default_init)
    ?(scalar = Cf_exec.Seqexec.default_scalar) (l : Imperfect.loop) =
  let memory : Cf_exec.Seqexec.memory = Hashtbl.create 256 in
  let env : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let index v =
    match Hashtbl.find_opt env v with
    | Some x -> x
    | None -> invalid_arg ("Distribution.run: unbound index " ^ v)
  in
  let exec_stmt (s : Stmt.t) =
    let read (r : Aref.t) =
      let el = Aref.eval index r in
      match Hashtbl.find_opt memory (r.Aref.array, Array.to_list el) with
      | Some v -> v
      | None -> init r.Aref.array el
    in
    let v = Expr.eval ~read ~scalar ~index s.rhs in
    let el = Aref.eval index s.lhs in
    Hashtbl.replace memory (s.lhs.Aref.array, Array.to_list el) v
  in
  let rec exec_loop (l : Imperfect.loop) =
    let lo = Affine.eval index l.lower and hi = Affine.eval index l.upper in
    for x = lo to hi do
      Hashtbl.replace env l.var x;
      List.iter
        (function
          | Imperfect.Statement s -> exec_stmt s
          | Imperfect.Loop l' -> exec_loop l')
        l.body
    done;
    Hashtbl.remove env l.var
  in
  exec_loop l;
  memory

let run_distributed ?(init = Cf_exec.Seqexec.default_init)
    ?(scalar = Cf_exec.Seqexec.default_scalar) nests =
  let acc : Cf_exec.Seqexec.memory = Hashtbl.create 256 in
  List.iter
    (fun nest ->
      let chained_init a el =
        match Hashtbl.find_opt acc (a, Array.to_list el) with
        | Some v -> v
        | None -> init a el
      in
      let m = Cf_exec.Seqexec.run ~init:chained_init ~scalar nest in
      Hashtbl.iter (fun k v -> Hashtbl.replace acc k v) m)
    nests;
  acc

let preserves ?init ?scalar l =
  let original = run ?init ?scalar l in
  let distributed = run_distributed ?init ?scalar (Imperfect.distribute l) in
  Cf_exec.Seqexec.bindings original = Cf_exec.Seqexec.bindings distributed

let distribute_checked l =
  let nests = Imperfect.distribute l in
  if Imperfect.is_perfect l then Ok nests
  else if preserves l then Ok nests
  else
    Error
      "loop distribution would reorder a dependence (a later nest feeds \
       an earlier one); the nest cannot be brought into the perfect \
       model this way"
