open Cf_loop
open Cf_core

let touched_elements nest name =
  let order = Nest.indices nest in
  let hcs =
    List.map
      (fun (s : Nest.ref_site) -> Aref.matrix order s.aref)
      (Nest.sites_of_array nest name)
  in
  let seen = Hashtbl.create 128 in
  Nest.iter_space nest (fun iter ->
      List.iter
        (fun (h, c) ->
          let el =
            Array.mapi
              (fun p row ->
                let acc = ref c.(p) in
                Array.iteri (fun k a -> acc := !acc + (a * iter.(k))) row;
                !acc)
              h
          in
          Hashtbl.replace seen (Array.to_list el) ())
        hcs);
  Hashtbl.fold (fun el () acc -> Array.of_list el :: acc) seen []
  |> List.sort compare

(* Render labelled 2-D points as a grid; rows = coordinate 0 downward,
   columns = coordinate 1 rightward. *)
let grid_2d points =
  match points with
  | [] -> "(empty)\n"
  | (p0, _) :: _ when Array.length p0 <> 2 -> "(not 2-D)\n"
  | _ ->
    let r0 = List.fold_left (fun a (p, _) -> min a p.(0)) max_int points in
    let r1 = List.fold_left (fun a (p, _) -> max a p.(0)) min_int points in
    let c0 = List.fold_left (fun a (p, _) -> min a p.(1)) max_int points in
    let c1 = List.fold_left (fun a (p, _) -> max a p.(1)) min_int points in
    let width =
      List.fold_left (fun a (_, l) -> max a (String.length l)) 2 points
    in
    let tbl = Hashtbl.create (List.length points) in
    List.iter (fun (p, l) -> Hashtbl.replace tbl (p.(0), p.(1)) l) points;
    let buf = Buffer.create 256 in
    let pad s = Printf.sprintf "%*s" width s in
    Buffer.add_string buf (pad " " ^ " |");
    for c = c0 to c1 do
      Buffer.add_string buf (" " ^ pad (string_of_int c))
    done;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (width + 2) '-');
    for _ = c0 to c1 do
      Buffer.add_string buf (String.make (width + 1) '-')
    done;
    Buffer.add_char buf '\n';
    for r = r0 to r1 do
      Buffer.add_string buf (pad (string_of_int r) ^ " |");
      for c = c0 to c1 do
        let l =
          match Hashtbl.find_opt tbl (r, c) with
          | Some l -> l
          | None -> String.make (min width 2) '.'
        in
        Buffer.add_string buf (" " ^ pad l)
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf

let data_space nest name =
  let els = touched_elements nest name in
  (* With a declaration, pad the grid to the declared box (the paper's
     figures show unused in-bounds elements as empty points). *)
  let padding =
    match Nest.declared_bounds nest name with
    | Some [| (r0, r1); (c0, c1) |] ->
      [ ([| r0; c0 |], ".."); ([| r1; c1 |], "..") ]
    | _ -> []
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "data space of %s (## = referenced by the loop):\n" name);
  (* Padding first: a later binding for the same cell wins in the grid,
     so real "##" labels must come after the box corners. *)
  Buffer.add_string buf
    (grid_2d (padding @ List.map (fun el -> (el, "##")) els));
  let drvs = Cf_dep.Analysis.data_referenced_vectors nest name in
  if drvs <> [] then begin
    Buffer.add_string buf "data-referenced vectors:";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Format.asprintf " %a" Cf_linalg.Vec.pp_int r))
      drvs;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let data_partition nest partition name =
  let dp = Data_partition.make nest partition name in
  let labelled =
    List.map
      (fun el ->
        match Data_partition.owner dp el with
        | [ j ] -> (el, string_of_int j)
        | _ :: _ -> (el, "**")
        | [] -> (el, "?"))
      (Data_partition.elements dp)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "data partition of %s (cell = owning block B^%s_j):\n" name
       name);
  Buffer.add_string buf (grid_2d labelled);
  let dup = Data_partition.duplicated dp in
  if dup <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%d element(s) replicated (**); copy counts:\n"
         (List.length dup));
    let shown = ref 0 in
    List.iter
      (fun (el, n) ->
        if !shown < 16 then begin
          Buffer.add_string buf
            (Format.asprintf "  %s%a: %d copies (blocks %s)\n" name
               Cf_linalg.Vec.pp_int el n
               (String.concat ","
                  (List.map string_of_int (Data_partition.owner dp el))));
          incr shown
        end)
      dup;
    if List.length dup > 16 then
      Buffer.add_string buf
        (Printf.sprintf "  ... and %d more\n" (List.length dup - 16))
  end;
  Buffer.contents buf

let iteration_partition partition =
  let nest = Iter_partition.nest partition in
  let n = Nest.depth nest in
  let blocks = Iter_partition.blocks partition in
  if n = 2 then begin
    let points =
      Array.to_list blocks
      |> List.concat_map (fun (b : Iter_partition.block) ->
             List.map (fun it -> (it, string_of_int b.id)) b.iterations)
    in
    Printf.sprintf "iteration partition (cell = block B_j):\n%s"
      (grid_2d points)
  end
  else Format.asprintf "%a" Iter_partition.pp partition

let reference_graph nest name =
  Format.asprintf "%a" Cf_dep.Graph.pp (Cf_dep.Graph.build nest name)

let assignment_grid pl ~grid =
  let sizes = Cf_transform.Parloop.block_sizes pl in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "block workload (cell = iterations in block at forall coords):\n";
  (match sizes with
   | ((b, _) :: _) when Array.length b = 2 ->
     Buffer.add_string buf
       (grid_2d (List.map (fun (b, n) -> (b, string_of_int n)) sizes))
   | _ ->
     List.iter
       (fun (b, n) ->
         Buffer.add_string buf
           (Format.asprintf "  block %a: %d iterations\n" Cf_linalg.Vec.pp_int
              b n))
       sizes);
  if Array.length grid > 0 then begin
    let counts = Cf_exec.Assign.parloop_counts pl ~grid in
    Buffer.add_string buf
      (Printf.sprintf "cyclic assignment on a %s grid:\n"
         (String.concat "x"
            (Array.to_list (Array.map string_of_int grid))));
    Array.iteri
      (fun rank c ->
        Buffer.add_string buf (Printf.sprintf "  PE%d: %d iterations\n" rank c))
      counts;
    let b = Cf_exec.Balance.of_counts counts in
    Buffer.add_string buf
      (Format.asprintf "  balance: %a\n" Cf_exec.Balance.pp b)
  end;
  Buffer.contents buf
