(** The paper's evaluation tables (Section IV) regenerated from the cost
    model, next to the published Transputer measurements. *)

val problem_sizes : int list
(** [16; 32; 64; 128; 256] — the paper's M column heads. *)

val rows : (Cf_exec.Matmul.variant * int) list
(** (variant, processor count) in the paper's row order:
    (L5, 1), (L5', 4), (L5'', 4), (L5', 16), (L5'', 16). *)

val paper_table1 : (Cf_exec.Matmul.variant * int * float list) list
(** The published execution times in seconds (Table I). *)

val paper_table2 : (Cf_exec.Matmul.variant * int * float list) list
(** The published speedups (Table II); sequential row omitted. *)

val table1 : ?cost:Cf_machine.Cost.t -> unit -> string
(** Render Table I: modelled execution time of L5/L5'/L5'' with the
    paper's value in parentheses. *)

val table2 : ?cost:Cf_machine.Cost.t -> unit -> string
(** Render Table II: modelled speedup with the paper's in parentheses. *)

val max_relative_error : ?cost:Cf_machine.Cost.t -> unit -> float
(** Largest |model − paper| / paper over all Table I cells — the
    reproduction fidelity indicator recorded in EXPERIMENTS.md. *)
