open Cf_exec

let problem_sizes = [ 16; 32; 64; 128; 256 ]

let rows =
  [
    (Matmul.Sequential, 1);
    (Matmul.Dup_b, 4);
    (Matmul.Dup_ab, 4);
    (Matmul.Dup_b, 16);
    (Matmul.Dup_ab, 16);
  ]

let paper_table1 =
  [
    (Matmul.Sequential, 1, [ 0.0399; 0.3162; 2.5241; 20.1691; 161.2546 ]);
    (Matmul.Dup_b, 4, [ 0.0144; 0.0956; 0.6961; 5.2895; 41.3058 ]);
    (Matmul.Dup_ab, 4, [ 0.0127; 0.0855; 0.6467; 5.1405; 40.7988 ]);
    (Matmul.Dup_b, 16, [ 0.0135; 0.0543; 0.2869; 1.7908; 12.3584 ]);
    (Matmul.Dup_ab, 16, [ 0.0080; 0.0326; 0.2043; 1.4326; 10.6513 ]);
  ]

let paper_table2 =
  [
    (Matmul.Dup_b, 4, [ 2.77; 3.31; 3.63; 3.81; 3.89 ]);
    (Matmul.Dup_ab, 4, [ 3.14; 3.70; 3.90; 3.92; 3.95 ]);
    (Matmul.Dup_b, 16, [ 2.96; 5.82; 8.80; 11.26; 13.05 ]);
    (Matmul.Dup_ab, 16, [ 4.99; 9.70; 12.35; 14.08; 15.14 ]);
  ]

let paper_value table variant p m =
  let _, _, values =
    List.find (fun (v, p', _) -> v = variant && p' = p) table
  in
  let rec nth sizes values =
    match (sizes, values) with
    | s :: _, v :: _ when s = m -> v
    | _ :: sizes, _ :: values -> nth sizes values
    | _ -> invalid_arg "Tables.paper_value"
  in
  nth problem_sizes values

let header title =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (Printf.sprintf "%-6s %-5s" "procs" "loop");
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf " %16s" ("M=" ^ string_of_int m)))
    problem_sizes;
  Buffer.add_char buf '\n';
  buf

let table1 ?(cost = Cf_machine.Cost.transputer) () =
  let buf =
    header
      "Table I. Execution time of loops L5, L5' and L5'' (s); model (paper)"
  in
  List.iter
    (fun (variant, p) ->
      Buffer.add_string buf
        (Printf.sprintf "p=%-4d %-5s" p (Matmul.variant_name variant));
      List.iter
        (fun m ->
          let t = Matmul.analytic_time cost variant ~m ~p in
          let ref_t = paper_value paper_table1 variant p m in
          Buffer.add_string buf (Printf.sprintf " %8.4f(%6.4g)" t ref_t))
        problem_sizes;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let table2 ?(cost = Cf_machine.Cost.transputer) () =
  let buf =
    header "Table II. Speedup of loops L5' and L5''; model (paper)"
  in
  List.iter
    (fun (variant, p) ->
      if variant <> Matmul.Sequential then begin
        Buffer.add_string buf
          (Printf.sprintf "p=%-4d %-5s" p (Matmul.variant_name variant));
        List.iter
          (fun m ->
            let s = Matmul.speedup cost variant ~m ~p in
            let ref_s = paper_value paper_table2 variant p m in
            Buffer.add_string buf (Printf.sprintf " %8.2f(%6.2f)" s ref_s))
          problem_sizes;
        Buffer.add_char buf '\n'
      end)
    rows;
  Buffer.contents buf

let max_relative_error ?(cost = Cf_machine.Cost.transputer) () =
  List.fold_left
    (fun acc (variant, p, values) ->
      List.fold_left2
        (fun acc m paper_t ->
          let t = Matmul.analytic_time cost variant ~m ~p in
          Float.max acc (Float.abs (t -. paper_t) /. paper_t))
        acc problem_sizes values)
    0. paper_table1
