(** Text renderings of the paper's figures.

    The originals are hand-drawn diagrams of 2-D data/iteration spaces;
    these renderings carry the same information as character grids: rows
    are the first coordinate increasing downward, columns the second
    increasing rightward, each cell showing the block that owns the
    point ([..] for array elements the loop never touches). *)

open Cf_core

val data_space : Cf_loop.Nest.t -> string -> string
(** Fig. 1 analogue: the touched elements of one array ([##] used, [..]
    unused within the bounding box) plus its data-referenced vectors. *)

val data_partition : Cf_loop.Nest.t -> Iter_partition.t -> string -> string
(** Figs. 2/4/8 analogue: each touched element labelled with its data
    block id; elements with several owners (duplication) show [**] with
    an ownership legend below. *)

val iteration_partition : Iter_partition.t -> string
(** Figs. 3/5/9 analogue: each iteration labelled with its block id.
    Only 1-D and 2-D nests render as grids; deeper nests fall back to a
    per-block listing. *)

val reference_graph : Cf_loop.Nest.t -> string -> string
(** Figs. 6/7 analogue: the data reference graph as text. *)

val assignment_grid :
  Cf_transform.Parloop.t -> grid:int array -> string
(** Fig. 10 analogue: the forall coordinate space with each block's
    iteration count, and the per-processor totals of the cyclic
    assignment. *)
