lib/report/tables.mli: Cf_exec Cf_machine
