lib/report/allocmap.ml: Array Buffer Cf_core Cf_linalg Cf_loop Data_partition Format Hashtbl Iter_partition List Printf String
