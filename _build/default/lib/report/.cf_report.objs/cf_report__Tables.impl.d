lib/report/tables.ml: Buffer Cf_exec Cf_machine Float List Matmul Printf
