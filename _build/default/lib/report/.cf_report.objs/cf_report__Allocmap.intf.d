lib/report/allocmap.mli: Cf_core
