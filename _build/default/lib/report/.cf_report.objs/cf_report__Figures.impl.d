lib/report/figures.ml: Aref Array Buffer Cf_core Cf_dep Cf_exec Cf_linalg Cf_loop Cf_transform Data_partition Format Hashtbl Iter_partition List Nest Printf String
