lib/report/svg.mli: Cf_core Cf_loop Cf_transform
