lib/report/figures.mli: Cf_core Cf_loop Cf_transform Iter_partition
