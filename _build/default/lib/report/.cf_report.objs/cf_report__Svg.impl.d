lib/report/svg.ml: Array Buffer Cf_core Cf_transform Data_partition Float Hashtbl Iter_partition List Printf
