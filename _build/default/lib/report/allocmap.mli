(** Per-processor data-allocation maps.

    The end product of the paper's technique is an assignment of array
    elements to processor memories.  This renders it: for each
    processor, the iteration blocks it executes, its iteration count,
    and per array the elements it must hold (count, bounding corners and
    a sample), with replication totals at the end. *)

val render :
  ?max_sample:int ->
  Cf_core.Iter_partition.t ->
  placement:(int -> int) ->
  nprocs:int ->
  string
(** [render partition ~placement ~nprocs] builds the allocation map for
    blocks placed by [placement] on [nprocs] processors.  [max_sample]
    bounds the element samples shown per array (default 6). *)
