open Cf_core

let render ?(max_sample = 6) partition ~placement ~nprocs =
  if nprocs < 1 then invalid_arg "Allocmap.render: nprocs < 1";
  let nest = Iter_partition.nest partition in
  let arrays = Cf_loop.Nest.arrays nest in
  let dps = List.map (fun a -> (a, Data_partition.make nest partition a)) arrays in
  let blocks = Iter_partition.blocks partition in
  let buf = Buffer.create 1024 in
  let total_copies = ref 0 in
  let distinct = Hashtbl.create 256 in
  for pe = 0 to nprocs - 1 do
    let mine =
      Array.to_list blocks
      |> List.filter (fun (b : Iter_partition.block) -> placement b.id = pe)
    in
    let iterations =
      List.fold_left
        (fun acc (b : Iter_partition.block) ->
          acc + List.length b.iterations)
        0 mine
    in
    Buffer.add_string buf
      (Printf.sprintf "PE%d: %d block(s) %s, %d iteration(s)\n" pe
         (List.length mine)
         (if mine = [] then ""
          else
            Printf.sprintf "{%s}"
              (String.concat ","
                 (List.map
                    (fun (b : Iter_partition.block) -> string_of_int b.id)
                    mine)))
         iterations);
    List.iter
      (fun (a, dp) ->
        let elements =
          List.concat_map
            (fun (b : Iter_partition.block) -> Data_partition.block dp b.id)
            mine
          |> List.sort_uniq compare
        in
        match elements with
        | [] -> ()
        | first :: _ ->
          total_copies := !total_copies + List.length elements;
          List.iter
            (fun el -> Hashtbl.replace distinct (a, Array.to_list el) ())
            elements;
          let d = Array.length first in
          let lo = Array.copy first and hi = Array.copy first in
          List.iter
            (fun el ->
              for k = 0 to d - 1 do
                if el.(k) < lo.(k) then lo.(k) <- el.(k);
                if el.(k) > hi.(k) then hi.(k) <- el.(k)
              done)
            elements;
          let sample =
            List.filteri (fun i _ -> i < max_sample) elements
            |> List.map (Format.asprintf "%a" Cf_linalg.Vec.pp_int)
          in
          let more = List.length elements - max_sample in
          Buffer.add_string buf
            (Printf.sprintf "  %s: %d element(s) in [%s]..[%s]  %s%s\n" a
               (List.length elements)
               (String.concat ","
                  (Array.to_list (Array.map string_of_int lo)))
               (String.concat ","
                  (Array.to_list (Array.map string_of_int hi)))
               (String.concat " " sample)
               (if more > 0 then Printf.sprintf " ... +%d" more else "")))
      dps
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "total: %d stored element copies over %d distinct elements (%d \
        replicated)\n"
       !total_copies (Hashtbl.length distinct)
       (!total_copies - Hashtbl.length distinct));
  Buffer.contents buf
