type t = { array : string; subscripts : Affine.t array }

let make array subs =
  if subs = [] then invalid_arg "Aref.make: no subscripts";
  { array; subscripts = Array.of_list subs }

let dim r = Array.length r.subscripts
let equal a b = a.array = b.array && a.subscripts = b.subscripts
let compare = Stdlib.compare

let matrix order r =
  let rows = Array.map (fun e -> Affine.coeff_vector order e) r.subscripts in
  (Array.map fst rows, Array.map snd rows)

let eval env r = Array.map (Affine.eval env) r.subscripts

let pp ppf r =
  Format.fprintf ppf "%s[%a]" r.array
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Affine.pp)
    r.subscripts
