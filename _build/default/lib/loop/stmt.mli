(** Assignment statements [S: A[...] := expr]. *)

type t = { label : string; lhs : Aref.t; rhs : Expr.t }

val make : ?label:string -> Aref.t -> Expr.t -> t
val reads : t -> Aref.t list
val pp : Format.formatter -> t -> unit
