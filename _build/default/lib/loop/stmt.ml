type t = { label : string; lhs : Aref.t; rhs : Expr.t }

let make ?(label = "") lhs rhs = { label; lhs; rhs }
let reads s = Expr.reads s.rhs

let pp ppf s =
  if s.label <> "" then Format.fprintf ppf "%s: " s.label;
  Format.fprintf ppf "%a := %a;" Aref.pp s.lhs Expr.pp s.rhs
