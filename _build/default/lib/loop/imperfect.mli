(** Imperfect loop nests and loop distribution.

    The paper's model is a perfect nest — all statements at the
    innermost level.  Real programs interleave statements with inner
    loops; the classical way into the model is {e loop distribution}:
    split each body into maximal segments and give each its own perfect
    nest.  Distribution reorders execution (an earlier nest finishes
    before a later one starts), so it is a {e candidate} transformation;
    {!Cf_frontend.Distribution.preserves} checks its legality exactly by
    interpretation. *)

type item =
  | Statement of Stmt.t
  | Loop of loop

and loop = {
  var : string;
  lower : Affine.t;
  upper : Affine.t;
  body : item list;  (** non-empty *)
}

val validate : loop -> unit
(** Checks index scoping and non-empty bodies.
    Raises [Invalid_argument] otherwise. *)

val is_perfect : loop -> bool
(** True when every level holds either exactly one inner loop or only
    statements. *)

val to_nest : loop -> Nest.t
(** Direct conversion of a perfect loop.
    Raises [Invalid_argument] when {!is_perfect} is false. *)

val distribute : loop -> Nest.t list
(** The perfect nests obtained by maximal-segment loop distribution, in
    textual order.  A perfect input yields a single nest. *)

val statements : loop -> Stmt.t list
(** All statements in textual order. *)

val pp : Format.formatter -> loop -> unit
