type item =
  | Statement of Stmt.t
  | Loop of loop

and loop = {
  var : string;
  lower : Affine.t;
  upper : Affine.t;
  body : item list;
}

let rec validate_loop outer l =
  if l.body = [] then invalid_arg "Imperfect: empty loop body";
  if List.mem l.var outer then
    invalid_arg (Printf.sprintf "Imperfect: duplicate index %s" l.var);
  let check e =
    List.iter
      (fun v ->
        if not (List.mem v outer) then
          invalid_arg
            (Printf.sprintf
               "Imperfect: bound of %s mentions non-outer index %s" l.var v))
      (Affine.vars e)
  in
  check l.lower;
  check l.upper;
  let inner = outer @ [ l.var ] in
  List.iter
    (function
      | Statement _ -> ()
      | Loop l' -> validate_loop inner l')
    l.body

let validate l = validate_loop [] l

let rec is_perfect l =
  match l.body with
  | [ Loop l' ] -> is_perfect l'
  | items -> List.for_all (function Statement _ -> true | Loop _ -> false) items

let rec statements l =
  List.concat_map
    (function Statement s -> [ s ] | Loop l' -> statements l')
    l.body

let level_of l = { Nest.var = l.var; lower = l.lower; upper = l.upper }

let to_nest l =
  validate l;
  let rec go levels l =
    let levels = levels @ [ level_of l ] in
    match l.body with
    | [ Loop l' ] -> go levels l'
    | items ->
      let stmts =
        List.map
          (function
            | Statement s -> s
            | Loop _ -> invalid_arg "Imperfect.to_nest: nest is not perfect")
          items
      in
      Nest.make levels stmts
  in
  go [] l

let distribute l =
  validate l;
  (* Maximal segments: consecutive statements coalesce into one perfect
     nest at the current depth; each inner loop recurses on its own. *)
  let out = ref [] in
  let emit levels stmts =
    match stmts with
    | [] -> ()
    | _ -> out := Nest.make levels (List.rev stmts) :: !out
  in
  let rec go levels l =
    let levels = levels @ [ level_of l ] in
    let pending = ref [] in
    List.iter
      (function
        | Statement s -> pending := s :: !pending
        | Loop l' ->
          emit levels !pending;
          pending := [];
          go levels l')
      l.body;
    emit levels !pending
  in
  go [] l;
  List.rev !out

let pp ppf l =
  let rec go indent l =
    let pad = String.make (2 * indent) ' ' in
    Format.fprintf ppf "%sfor %s = %a to %a@," pad l.var Affine.pp l.lower
      Affine.pp l.upper;
    List.iter
      (function
        | Statement s ->
          Format.fprintf ppf "%s%a@," (String.make (2 * (indent + 1)) ' ')
            Stmt.pp s
        | Loop l' -> go (indent + 1) l')
      l.body;
    Format.fprintf ppf "%send@," pad
  in
  go 0 l
