(** Affine integer expressions over named index variables.

    An affine expression is [c + Σ a_v · v] for integer coefficients.
    The representation is canonical (coefficients sorted by variable name,
    zero coefficients dropped), so structural equality coincides with
    semantic equality. *)

type t

val const : int -> t
val var : string -> t
val term : int -> string -> t
(** [term a v] is [a·v]. *)

val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val constant_part : t -> int
val coeff : t -> string -> int
val coeffs : t -> (string * int) list
(** Variable/coefficient pairs, sorted by variable name, no zeros. *)

val vars : t -> string list
val is_constant : t -> bool
val to_constant : t -> int option

val eval : (string -> int) -> t -> int
(** [eval env e]; [env] raises for unknown variables. *)

val substitute : (string -> t option) -> t -> t
(** [substitute f e] replaces every variable [v] with [f v] when it is
    [Some]; variables mapped to [None] are kept. *)

val coeff_vector : string array -> t -> int array * int
(** [coeff_vector order e] is [(a, c)] where [a.(k)] is the coefficient of
    [order.(k)] and [c] the constant part.  Raises [Invalid_argument] when
    [e] mentions a variable outside [order]. *)

val of_coeff_vector : string array -> int array -> int -> t

val pp : Format.formatter -> t -> unit
(** Prints e.g. [2*i - j + 1]. *)

val to_string : t -> string
