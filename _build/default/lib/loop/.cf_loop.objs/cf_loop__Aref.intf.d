lib/loop/aref.mli: Affine Format
