lib/loop/affine.ml: Array Cf_rational Format List Oint Printf Stdlib String
