lib/loop/affine.mli: Format
