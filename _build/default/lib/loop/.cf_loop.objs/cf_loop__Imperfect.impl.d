lib/loop/imperfect.ml: Affine Format List Nest Printf Stmt String
