lib/loop/parse.mli: Imperfect Nest
