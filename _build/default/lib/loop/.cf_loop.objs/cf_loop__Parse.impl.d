lib/loop/parse.ml: Affine Aref Array Expr Imperfect List Nest Printf Stmt String
