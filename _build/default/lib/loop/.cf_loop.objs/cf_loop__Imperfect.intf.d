lib/loop/imperfect.mli: Affine Format Nest Stmt
