lib/loop/stmt.ml: Aref Expr Format
