lib/loop/nest.mli: Affine Aref Format Stmt
