lib/loop/stmt.mli: Aref Expr Format
