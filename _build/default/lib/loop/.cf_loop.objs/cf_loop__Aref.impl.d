lib/loop/aref.ml: Affine Array Format Stdlib
