lib/loop/expr.ml: Aref Format List
