lib/loop/nest.ml: Affine Aref Array Format Hashtbl List Printf Stmt String
