lib/loop/expr.mli: Aref Format
