(** Array references [A[e_1, ..., e_d]] with affine subscripts.

    Relative to an ordered list of loop indices, a reference determines
    the paper's pair [(H, c̄)]: subscript [e_p] contributes row [p] of the
    [d × n] reference matrix [H] and component [p] of the constant offset
    vector [c̄]. *)

type t = { array : string; subscripts : Affine.t array }

val make : string -> Affine.t list -> t
val dim : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val matrix : string array -> t -> int array array * int array
(** [matrix index_order r] is [(H, c)].  Raises [Invalid_argument] when a
    subscript mentions a variable outside [index_order]. *)

val eval : (string -> int) -> t -> int array
(** Subscript values at a given iteration/environment. *)

val pp : Format.formatter -> t -> unit
(** Prints as [A[2*i, j - 1]]. *)
