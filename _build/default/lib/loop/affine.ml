open Cf_rational

type t = { terms : (string * int) list; const : int }
(* [terms] sorted by variable name, coefficients nonzero. *)

let const c = { terms = []; const = c }
let zero = const 0
let term a v = if a = 0 then zero else { terms = [ (v, a) ]; const = 0 }
let var v = term 1 v

let merge f ta tb =
  (* Merge two sorted term lists combining coefficients with [f]. *)
  let rec go ta tb =
    match (ta, tb) with
    | [], rest -> List.filter_map (fun (v, b) -> let c = f 0 b in
                                    if c = 0 then None else Some (v, c)) rest
    | rest, [] -> List.filter_map (fun (v, a) -> let c = f a 0 in
                                    if c = 0 then None else Some (v, c)) rest
    | (va, a) :: ta', (vb, b) :: tb' ->
      let cmp = String.compare va vb in
      if cmp < 0 then
        let c = f a 0 in
        if c = 0 then go ta' tb else (va, c) :: go ta' tb
      else if cmp > 0 then
        let c = f 0 b in
        if c = 0 then go ta tb' else (vb, c) :: go ta tb'
      else
        let c = f a b in
        if c = 0 then go ta' tb' else (va, c) :: go ta' tb'
  in
  go ta tb

let add a b =
  { terms = merge Oint.add a.terms b.terms; const = Oint.add a.const b.const }

let neg a =
  {
    terms = List.map (fun (v, c) -> (v, Oint.neg c)) a.terms;
    const = Oint.neg a.const;
  }

let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else
    {
      terms = List.map (fun (v, c) -> (v, Oint.mul k c)) a.terms;
      const = Oint.mul k a.const;
    }

let equal a b = a = b
let compare = Stdlib.compare
let constant_part a = a.const
let coeff a v = match List.assoc_opt v a.terms with Some c -> c | None -> 0
let coeffs a = a.terms
let vars a = List.map fst a.terms
let is_constant a = a.terms = []
let to_constant a = if is_constant a then Some a.const else None

let eval env a =
  List.fold_left
    (fun acc (v, c) -> Oint.add acc (Oint.mul c (env v)))
    a.const a.terms

let substitute f a =
  List.fold_left
    (fun acc (v, c) ->
      match f v with
      | Some e -> add acc (scale c e)
      | None -> add acc (term c v))
    (const a.const) a.terms

let coeff_vector order a =
  let n = Array.length order in
  let out = Array.make n 0 in
  List.iter
    (fun (v, c) ->
      let rec find k =
        if k = n then
          invalid_arg
            (Printf.sprintf "Affine.coeff_vector: unknown variable %s" v)
        else if String.equal order.(k) v then out.(k) <- c
        else find (k + 1)
      in
      find 0)
    a.terms;
  (out, a.const)

let of_coeff_vector order a c =
  if Array.length order <> Array.length a then
    invalid_arg "Affine.of_coeff_vector: shape mismatch";
  let e = ref (const c) in
  Array.iteri (fun k v -> e := add !e (term a.(k) v)) order;
  !e

let pp ppf a =
  let pp_term ppf ~first (v, c) =
    if c >= 0 && not first then Format.fprintf ppf " + "
    else if c < 0 then Format.fprintf ppf (if first then "-" else " - ");
    let m = Stdlib.abs c in
    if m = 1 then Format.fprintf ppf "%s" v
    else Format.fprintf ppf "%d*%s" m v
  in
  match a.terms with
  | [] -> Format.fprintf ppf "%d" a.const
  | first_term :: rest ->
    pp_term ppf ~first:true first_term;
    List.iter (fun t -> pp_term ppf ~first:false t) rest;
    if a.const > 0 then Format.fprintf ppf " + %d" a.const
    else if a.const < 0 then Format.fprintf ppf " - %d" (Stdlib.abs a.const)

let to_string a = Format.asprintf "%a" pp a
