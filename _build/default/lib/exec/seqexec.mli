(** Sequential reference interpreter.

    Executes a nest in lexicographic order over integer arrays and
    returns the final value of every written element — the golden result
    the parallel executor is validated against. *)

open Cf_loop

type memory = (string * int list, int) Hashtbl.t

val default_init : string -> int array -> int
(** Deterministic pseudo-random initial value of an array element
    (stable across runs, different across elements). *)

val default_scalar : string -> int
(** Deterministic nonzero value of a free scalar. *)

val run :
  ?init:(string -> int array -> int) ->
  ?scalar:(string -> int) ->
  Nest.t ->
  memory
(** Final written values.  Reads of never-written elements fall back to
    [init]; loop indices evaluate to their iteration values. *)

val run_filtered :
  ?init:(string -> int array -> int) ->
  ?scalar:(string -> int) ->
  keep:(stmt_index:int -> int array -> bool) ->
  Nest.t ->
  memory
(** Like {!run} but skipping statement instances for which [keep] is
    false — used to check that eliminating redundant computations
    preserves the surviving results (Sec. III.C). *)

val lookup : memory -> string -> int array -> int option
val bindings : memory -> (string * int array * int) list
(** Sorted. *)

val equal_on_written : memory -> memory -> bool
(** True when both memories wrote the same elements with equal values. *)
