(** Processor assignment of iteration blocks (Section IV).

    When the transformed loop exposes [k] forall dimensions and [p]
    processors are available, the paper shapes them as a
    [p_1 × ... × p_k] grid and deals neighboring blocks cyclically along
    each forall dimension — neighboring blocks have nearly equal sizes,
    so the mod rule balances the load. *)

val grid_for : Cf_transform.Parloop.t -> procs:int -> int array
(** The paper's grid shape for this loop's forall count
    ({!Cf_machine.Topology.grid_of_procs}).  [[||]] when the loop has no
    forall dimension (sequential). *)

val parloop_counts :
  Cf_transform.Parloop.t -> grid:int array -> int array
(** Iterations per processor rank under the cyclic assignment (ranks are
    row-major in the grid). *)

val block_cyclic : nprocs:int -> Parexec.placement
(** Round-robin over materialized block ids — the 1-D specialization
    used with {!Cf_core.Iter_partition}. *)
