(** Duplication advisor (the closing discussion of Section IV).

    Duplicating arrays buys parallelism but costs initial-distribution
    time; the paper observes for matrix multiplication that duplicating
    both [A] and [B] (loop L5″) beats duplicating [B] alone (L5′), and
    that "which kind of duplication is suitable ... can be appropriately
    estimated".  This module performs that estimate mechanically: it
    sweeps the subsets of arrays, forms each subset's selective
    partitioning space ({!Cf_core.Strategy.selective_space}), and scores

    [time ≈ iterations/p_eff · t_comp  +  blocks·t_start + copies·t_comm]

    where [p_eff = min(p, blocks)] and [copies] counts the replicated
    element copies the subset's data partition needs.  Candidates are
    ranked by estimated time; ties break toward fewer duplicated
    arrays. *)


type candidate = {
  duplicated : string list;     (** sorted array names *)
  space : Cf_linalg.Subspace.t;
  parallel_dims : int;
  blocks : int;
  copies : int;                 (** total stored element copies *)
  replicated_copies : int;      (** copies beyond one per element *)
  estimated_time : float;
}

val candidates :
  ?search_radius:int ->
  ?cost:Cf_machine.Cost.t ->
  procs:int ->
  Cf_loop.Nest.t ->
  candidate list
(** All [2^k] duplication choices over the referenced arrays (the nest
    must reference at most {!max_arrays}), ranked best first. *)

val best :
  ?search_radius:int ->
  ?cost:Cf_machine.Cost.t ->
  procs:int ->
  Cf_loop.Nest.t ->
  candidate

val max_arrays : int
(** Subset sweep cap (8 arrays = 256 candidates). *)

val pp_candidate : Format.formatter -> candidate -> unit
