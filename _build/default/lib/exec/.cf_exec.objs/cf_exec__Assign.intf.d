lib/exec/assign.mli: Cf_transform Parexec
