lib/exec/estimate.mli: Cf_core Cf_machine Iter_partition
