lib/exec/balance.ml: Array Cf_machine Format
