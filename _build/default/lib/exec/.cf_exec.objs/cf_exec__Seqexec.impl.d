lib/exec/seqexec.ml: Aref Array Cf_loop Expr Hashtbl List Nest Stmt
