lib/exec/assign.ml: Array Cf_machine Cf_transform Parexec Topology
