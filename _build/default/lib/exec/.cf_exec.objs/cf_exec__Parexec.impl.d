lib/exec/parexec.ml: Aref Array Cf_core Cf_dep Cf_linalg Cf_loop Cf_machine Expr Format Hashtbl Iter_partition List Machine Nest Seqexec Stmt Strategy Topology
