lib/exec/seqexec.mli: Cf_loop Hashtbl Nest
