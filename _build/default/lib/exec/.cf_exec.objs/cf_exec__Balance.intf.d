lib/exec/balance.mli: Cf_machine Format
