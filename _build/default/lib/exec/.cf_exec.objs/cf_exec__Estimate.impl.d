lib/exec/estimate.ml: Array Cf_core Cf_machine Iter_partition List Parexec
