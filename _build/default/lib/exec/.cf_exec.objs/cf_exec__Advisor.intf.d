lib/exec/advisor.mli: Cf_linalg Cf_loop Cf_machine Format
