lib/exec/parexec.mli: Cf_core Cf_dep Cf_machine Format Iter_partition Strategy
