lib/exec/commcost.mli: Cf_core Cf_dep Cf_loop Format Iter_partition Parexec
