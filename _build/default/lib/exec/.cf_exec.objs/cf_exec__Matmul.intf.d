lib/exec/matmul.mli: Cf_linalg Cf_loop Cf_machine Cost Parexec
