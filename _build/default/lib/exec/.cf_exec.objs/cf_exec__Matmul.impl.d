lib/exec/matmul.ml: Affine Aref Cf_core Cf_linalg Cf_loop Cf_machine Cost Expr List Machine Nest Parexec Seqexec Stmt Subspace Topology Vec
