lib/exec/commcost.ml: Array Cf_core Cf_dep Cf_linalg Cf_loop Format Hashtbl Iter_partition List Nest
