lib/exec/advisor.ml: Aref Array Cf_core Cf_linalg Cf_loop Cf_machine Cf_transform Float Format Hashtbl List Nest Strategy String
