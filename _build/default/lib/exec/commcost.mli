(** Communication-cost accounting for arbitrary (not necessarily
    communication-free) partitions.

    The paper's motivation is that severed flow dependences become
    messages.  This module counts them for any iteration partition and
    block placement: a read whose value was produced on another
    processor is a remote fetch.  Communication-free plans score zero —
    and naive distributions (say, slicing the outermost loop) can be
    compared quantitatively against them. *)

open Cf_core

type t = {
  total_flow_pairs : int;
      (** element-level (write → read) value flows in the execution *)
  remote_reads : int;
      (** reads whose producing write ran on another processor (one
          fetch per read instance — no caching) *)
  remote_values : int;
      (** distinct (value instance, consuming processor) pairs — the
          message count with perfect per-processor caching *)
}

val measure :
  ?exact:Cf_dep.Exact.result ->
  placement:Parexec.placement ->
  Iter_partition.t ->
  t
(** Walks the element timelines of the nest under the given partition
    and placement. *)

val outer_slab_partition : Cf_loop.Nest.t -> Iter_partition.t
(** The naive comparison: partition only along the outermost loop
    (Ψ = span of all the other index directions), i.e. "give each
    processor a band of outer iterations" — what a compiler without
    reference-pattern analysis would do. *)

val is_free : t -> bool
val pp : Format.formatter -> t -> unit
