open Cf_core
open Cf_loop

type candidate = {
  duplicated : string list;
  space : Cf_linalg.Subspace.t;
  parallel_dims : int;
  blocks : int;
  copies : int;
  replicated_copies : int;
  estimated_time : float;
}

let max_arrays = 8

let subsets l =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] l

(* Evaluate one duplication choice under the paper's own machinery: the
   transformed forall nest with the Section IV grid assignment.  Copies
   are counted per processor — co-located blocks share a replica, which
   is exactly why duplicating both matmul inputs (L5'') ships less data
   than broadcasting one of them (L5'). *)
let evaluate ?search_radius ~cost ~procs nest arrays duplicated =
  let duplicated = List.sort String.compare duplicated in
  let space = Strategy.selective_space ?search_radius nest ~duplicated in
  let pl = Cf_transform.Transformer.transform nest space in
  let k = pl.Cf_transform.Parloop.n_forall in
  let grid =
    if k = 0 then [||] else Cf_machine.Topology.grid_of_procs ~k procs
  in
  let nprocs =
    if k = 0 then 1 else Array.fold_left ( * ) 1 grid
  in
  let order = Nest.indices nest in
  let hcs =
    List.concat_map
      (fun a ->
        List.map
          (fun (s : Nest.ref_site) ->
            let h, c = Aref.matrix order s.aref in
            (a, h, c))
          (Nest.sites_of_array nest a))
      arrays
  in
  let blocks = Hashtbl.create 64 in
  let per_pe_elements = Hashtbl.create 1024 in
  let per_pe_iters = Array.make nprocs 0 in
  let visit pe_rank ~block ~iter =
    Hashtbl.replace blocks (Array.to_list block) ();
    per_pe_iters.(pe_rank) <- per_pe_iters.(pe_rank) + 1;
    List.iter
      (fun (a, h, c) ->
        let el =
          Array.to_list
            (Array.mapi
               (fun p row ->
                 let acc = ref c.(p) in
                 Array.iteri (fun q x -> acc := !acc + (x * iter.(q))) row;
                 !acc)
               h)
        in
        Hashtbl.replace per_pe_elements (a, el, pe_rank) ())
      hcs
  in
  if k = 0 then Cf_transform.Parloop.iter pl (visit 0)
  else begin
    let topo = Cf_machine.Topology.mesh grid in
    for rank = 0 to nprocs - 1 do
      let pe = Cf_machine.Topology.coords_of_rank topo rank in
      Cf_transform.Parloop.iter ~grid ~pe pl (visit rank)
    done
  end;
  let copies = Hashtbl.length per_pe_elements in
  let distinct = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (a, el, _) () -> Hashtbl.replace distinct (a, el) ())
    per_pe_elements;
  let replicated = copies - Hashtbl.length distinct in
  let max_iters = Array.fold_left max 0 per_pe_iters in
  let loaded_pes =
    Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 per_pe_iters
  in
  let estimated_time =
    (float_of_int max_iters *. cost.Cf_machine.Cost.t_comp)
    +. (float_of_int loaded_pes *. cost.Cf_machine.Cost.t_start)
    +. (float_of_int copies *. cost.Cf_machine.Cost.t_comm)
  in
  {
    duplicated;
    space;
    parallel_dims = k;
    blocks = Hashtbl.length blocks;
    copies;
    replicated_copies = replicated;
    estimated_time;
  }

let candidates ?search_radius ?(cost = Cf_machine.Cost.transputer) ~procs nest =
  if procs < 1 then invalid_arg "Advisor.candidates: procs < 1";
  let arrays = Nest.arrays nest in
  if List.length arrays > max_arrays then
    invalid_arg "Advisor.candidates: too many arrays to sweep";
  List.map
    (evaluate ?search_radius ~cost ~procs nest arrays)
    (subsets arrays)
  |> List.sort (fun a b ->
         let c = Float.compare a.estimated_time b.estimated_time in
         if c <> 0 then c
         else
           compare
             (List.length a.duplicated, a.duplicated)
             (List.length b.duplicated, b.duplicated))

let best ?search_radius ?cost ~procs nest =
  match candidates ?search_radius ?cost ~procs nest with
  | [] -> assert false (* at least the empty subset is evaluated *)
  | c :: _ -> c

let pp_candidate ppf c =
  Format.fprintf ppf
    "duplicate {%s}: %d parallel dim(s), %d block(s), %d replicated \
     copies, est %.6fs"
    (String.concat ", " c.duplicated)
    c.parallel_dims c.blocks c.replicated_copies c.estimated_time
