open Cf_core
open Cf_loop

type t = {
  total_flow_pairs : int;
  remote_reads : int;
  remote_values : int;
}

let measure ?exact ~placement partition =
  let nest = Iter_partition.nest partition in
  let exact =
    match exact with Some e -> e | None -> Cf_dep.Exact.analyze nest
  in
  let pe_of iter =
    placement (Iter_partition.block_id_of_iteration partition iter)
  in
  let total = ref 0 and remote = ref 0 in
  let value_keys = Hashtbl.create 256 in
  List.iter
    (fun ((array, element), events) ->
      (* Track the last write; each subsequent read consumes its value. *)
      let last_write = ref None in
      List.iteri
        (fun idx (e : Cf_dep.Exact.access_event) ->
          match e.access with
          | Nest.Write -> last_write := Some (idx, e)
          | Nest.Read -> (
            match !last_write with
            | None -> ()
            | Some (widx, w) ->
              incr total;
              let wpe = pe_of w.iter and rpe = pe_of e.iter in
              if wpe <> rpe then begin
                incr remote;
                Hashtbl.replace value_keys
                  (array, Array.to_list element, widx, rpe)
                  ()
              end))
        events)
    (Cf_dep.Exact.timelines exact);
  {
    total_flow_pairs = !total;
    remote_reads = !remote;
    remote_values = Hashtbl.length value_keys;
  }

let outer_slab_partition nest =
  let n = Nest.depth nest in
  let psi =
    Cf_linalg.Subspace.span n
      (List.init (n - 1) (fun k -> Cf_linalg.Vec.basis n (k + 1)))
  in
  Iter_partition.make nest psi

let is_free t = t.remote_reads = 0

let pp ppf t =
  Format.fprintf ppf
    "flow pairs %d, remote reads %d, remote values %d" t.total_flow_pairs
    t.remote_reads t.remote_values
