open Cf_core

let max_block_makespan ?(cost = Cf_machine.Cost.transputer) partition =
  float_of_int (Iter_partition.max_block_size partition)
  *. cost.Cf_machine.Cost.t_comp

let per_pe_iterations ~procs partition =
  if procs < 1 then invalid_arg "Estimate.per_pe_iterations: procs < 1";
  let out = Array.make procs 0 in
  Array.iter
    (fun (b : Iter_partition.block) ->
      let pe = Parexec.cyclic ~nprocs:procs b.id in
      out.(pe) <- out.(pe) + List.length b.iterations)
    (Iter_partition.blocks partition);
  out

let cyclic_makespan ?(cost = Cf_machine.Cost.transputer) ~procs partition =
  let loads = per_pe_iterations ~procs partition in
  float_of_int (Array.fold_left max 0 loads) *. cost.Cf_machine.Cost.t_comp

let speedup_limit partition =
  let total =
    Array.fold_left
      (fun acc (b : Iter_partition.block) -> acc + List.length b.iterations)
      0
      (Iter_partition.blocks partition)
  in
  let biggest = Iter_partition.max_block_size partition in
  if biggest = 0 then 0. else float_of_int total /. float_of_int biggest
