(** Load-balance metrics for a processor assignment (Section IV). *)

type t = {
  per_pe : int array;   (** iterations per processor *)
  max : int;
  min : int;
  mean : float;
  imbalance : float;
    (** max / mean; 1.0 is perfect balance.  0 when no work at all. *)
}

val of_counts : int array -> t
val of_machine : Cf_machine.Machine.t -> t
val pp : Format.formatter -> t -> unit
