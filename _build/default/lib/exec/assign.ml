open Cf_machine

let grid_for (pl : Cf_transform.Parloop.t) ~procs =
  if pl.Cf_transform.Parloop.n_forall = 0 then [||]
  else Topology.grid_of_procs ~k:pl.Cf_transform.Parloop.n_forall procs

let parloop_counts pl ~grid =
  if Array.length grid <> pl.Cf_transform.Parloop.n_forall then
    invalid_arg "Assign.parloop_counts: grid arity mismatch";
  if Array.length grid = 0 then begin
    (* Sequential loop: everything on one processor. *)
    let count = ref 0 in
    Cf_transform.Parloop.iter pl (fun ~block:_ ~iter:_ -> incr count);
    [| !count |]
  end
  else
  let topo = Topology.mesh grid in
  let p = Topology.size topo in
  Array.init p (fun rank ->
      let pe = Topology.coords_of_rank topo rank in
      let count = ref 0 in
      Cf_transform.Parloop.iter ~grid ~pe pl (fun ~block:_ ~iter:_ ->
          incr count);
      !count)

let block_cyclic ~nprocs = Parexec.cyclic ~nprocs
