open Cf_linalg
open Cf_loop
open Cf_machine

type variant = Sequential | Dup_b | Dup_ab

let variant_name = function
  | Sequential -> "L5"
  | Dup_b -> "L5'"
  | Dup_ab -> "L5''"

let nest ~m =
  let aref name subs = Aref.make name subs in
  let i = Affine.var "i" and j = Affine.var "j" and k = Affine.var "k" in
  let c = aref "C" [ i; j ] in
  let rhs =
    Expr.Binop
      ( Expr.Add,
        Expr.Read c,
        Expr.Binop
          (Expr.Mul, Expr.Read (aref "A" [ i; k ]), Expr.Read (aref "B" [ k; j ]))
      )
  in
  Nest.rectangular
    [ ("i", 1, m); ("j", 1, m); ("k", 1, m) ]
    [ Stmt.make c rhs ]

let partitioning_space variant ~m:_ =
  let v l = Vec.of_int_list l in
  match variant with
  | Sequential -> Subspace.span 3 [ v [ 1; 0; 0 ]; v [ 0; 1; 0 ]; v [ 0; 0; 1 ] ]
  | Dup_b -> Subspace.span 3 [ v [ 0; 1; 0 ]; v [ 0; 0; 1 ] ]
  | Dup_ab -> Subspace.span 3 [ v [ 0; 0; 1 ] ]

let isqrt p =
  let r = int_of_float (sqrt (float_of_int p) +. 0.5) in
  if r * r <> p then invalid_arg "Matmul: p must be a perfect square" else r

let analytic_time (c : Cost.t) variant ~m ~p =
  if p < 1 then invalid_arg "Matmul.analytic_time: p < 1";
  let fm = float_of_int m in
  let fp = float_of_int p in
  let comp = fm ** 3. *. c.Cost.t_comp /. fp in
  match variant with
  | Sequential ->
    if p <> 1 then invalid_arg "Matmul.analytic_time: L5 is sequential";
    comp
  | Dup_b ->
    (* T2: send A row blocks + broadcast B. *)
    let sqrtp = sqrt fp in
    comp
    +. ((fp *. c.Cost.t_start) +. (fm *. fm *. c.Cost.t_comm))
    +. (c.Cost.t_start +. (2. *. sqrtp *. fm *. fm *. c.Cost.t_comm))
  | Dup_ab ->
    (* T3: multicast row blocks of A and column blocks of B. *)
    let sqrtp = sqrt fp in
    comp +. (2. *. ((sqrtp *. c.Cost.t_start) +. (2. *. fm *. fm *. c.Cost.t_comm)))

let speedup cost variant ~m ~p =
  analytic_time cost Sequential ~m ~p:1 /. analytic_time cost variant ~m ~p

type run = {
  report : Parexec.report;
  makespan : float;
  distribution_time : float;
}

let init = Seqexec.default_init

let row_elements name ~m ~row =
  List.init m (fun q -> ([| row; q + 1 |], init name [| row; q + 1 |]))

let col_elements name ~m ~col =
  List.init m (fun q -> ([| q + 1; col |], init name [| q + 1; col |]))

let distribute_dup_b machine ~m ~p =
  (* Rows of A and C cyclically; C allocation is not charged, matching
     the paper's accounting.  B goes to everyone. *)
  for row = 1 to m do
    let pe = (row - 1) mod p in
    Machine.host_send machine ~pe "A" (row_elements "A" ~m ~row);
    List.iter
      (fun (el, v) -> Machine.store machine ~pe "C" el v)
      (row_elements "C" ~m ~row)
  done;
  let all_b =
    List.concat (List.init m (fun r -> row_elements "B" ~m ~row:(r + 1)))
  in
  Machine.host_broadcast machine "B" all_b

let distribute_dup_ab machine ~m ~p =
  let q = isqrt p in
  let topo = Machine.topology machine in
  let rank r c = Topology.rank_of_coords topo [| r; c |] in
  (* A rows to mesh rows. *)
  for a1 = 0 to q - 1 do
    let rows = List.filter (fun r -> (r - 1) mod q = a1) (List.init m succ) in
    let elements =
      List.concat_map (fun row -> row_elements "A" ~m ~row) rows
    in
    let pes = List.init q (fun a2 -> rank a1 a2) in
    Machine.host_multicast machine ~pes "A" elements
  done;
  (* B columns to mesh columns. *)
  for a2 = 0 to q - 1 do
    let cols = List.filter (fun c -> (c - 1) mod q = a2) (List.init m succ) in
    let elements =
      List.concat_map (fun col -> col_elements "B" ~m ~col) cols
    in
    let pes = List.init q (fun a1 -> rank a1 a2) in
    Machine.host_multicast machine ~pes "B" elements
  done;
  (* C[i,j] lives with its owner; allocation uncharged as in the paper. *)
  for i = 1 to m do
    for j = 1 to m do
      let pe = rank ((i - 1) mod q) ((j - 1) mod q) in
      Machine.store machine ~pe "C" [| i; j |] (init "C" [| i; j |])
    done
  done

let simulate ?(cost = Cost.transputer) variant ~m ~p =
  let t = nest ~m in
  let psi = partitioning_space variant ~m in
  let partition = Cf_core.Iter_partition.make t psi in
  match variant with
  | Sequential ->
    if p <> 1 then invalid_arg "Matmul.simulate: L5 is sequential";
    let machine = Machine.create (Topology.linear 1) cost in
    let report =
      Parexec.execute ~machine ~placement:(fun _ -> 0)
        ~strategy:Cf_core.Strategy.Nonduplicate partition
    in
    {
      report;
      makespan = Machine.makespan machine;
      distribution_time = Machine.distribution_time machine;
    }
  | Dup_b ->
    let machine = Machine.create (Topology.square p) cost in
    distribute_dup_b machine ~m ~p;
    (* Block j holds row i = j (base points ascend with i). *)
    let placement j = (j - 1) mod p in
    let report =
      Parexec.execute ~allocate:false ~machine ~placement
        ~strategy:Cf_core.Strategy.Duplicate partition
    in
    {
      report;
      makespan = Machine.makespan machine;
      distribution_time = Machine.distribution_time machine;
    }
  | Dup_ab ->
    let q = isqrt p in
    let machine = Machine.create (Topology.square p) cost in
    distribute_dup_ab machine ~m ~p;
    let topo = Machine.topology machine in
    (* Block ids ascend lexicographically with base point (i, j, 1). *)
    let placement b =
      let i = ((b - 1) / m) + 1 and j = ((b - 1) mod m) + 1 in
      Topology.rank_of_coords topo [| (i - 1) mod q; (j - 1) mod q |]
    in
    let report =
      Parexec.execute ~allocate:false ~machine ~placement
        ~strategy:Cf_core.Strategy.Duplicate partition
    in
    {
      report;
      makespan = Machine.makespan machine;
      distribution_time = Machine.distribution_time machine;
    }
