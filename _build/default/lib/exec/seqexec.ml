open Cf_loop

type memory = (string * int list, int) Hashtbl.t

(* Small deterministic mixers: results must be stable across runs and
   spread enough that accidental equality cannot mask a wrong read. *)
let default_init a el =
  let h = Hashtbl.hash (a, Array.to_list el) in
  1 + (h mod 997)

let default_scalar s = 1 + (Hashtbl.hash s mod 97)

let run_general ?(init = default_init) ?(scalar = default_scalar) ~keep t =
  let memory : memory = Hashtbl.create 256 in
  let idx = Nest.indices t in
  let pos = Hashtbl.create 8 in
  Array.iteri (fun k v -> Hashtbl.replace pos v k) idx;
  let body = Array.of_list t.Nest.body in
  Nest.iter_space t (fun iter ->
      let index v =
        match Hashtbl.find_opt pos v with
        | Some k -> iter.(k)
        | None -> invalid_arg ("Seqexec: unbound index " ^ v)
      in
      Array.iteri
        (fun si (s : Stmt.t) ->
          if keep ~stmt_index:si iter then begin
            let read r =
              let el = Aref.eval index r in
              match Hashtbl.find_opt memory (r.Aref.array, Array.to_list el)
              with
              | Some v -> v
              | None -> init r.Aref.array el
            in
            let v = Expr.eval ~read ~scalar ~index s.rhs in
            let el = Aref.eval index s.lhs in
            Hashtbl.replace memory (s.lhs.Aref.array, Array.to_list el) v
          end)
        body);
  memory

let run ?init ?scalar t =
  run_general ?init ?scalar ~keep:(fun ~stmt_index:_ _ -> true) t

let run_filtered ?init ?scalar ~keep t = run_general ?init ?scalar ~keep t

let lookup (m : memory) a el = Hashtbl.find_opt m (a, Array.to_list el)

let bindings (m : memory) =
  Hashtbl.fold (fun (a, el) v acc -> (a, Array.of_list el, v) :: acc) m []
  |> List.sort compare

let equal_on_written (a : memory) (b : memory) = bindings a = bindings b
