type t = {
  per_pe : int array;
  max : int;
  min : int;
  mean : float;
  imbalance : float;
}

let of_counts per_pe =
  if Array.length per_pe = 0 then invalid_arg "Balance.of_counts: empty";
  let total = Array.fold_left ( + ) 0 per_pe in
  let mx = Array.fold_left max per_pe.(0) per_pe in
  let mn = Array.fold_left min per_pe.(0) per_pe in
  let mean = float_of_int total /. float_of_int (Array.length per_pe) in
  let imbalance = if total = 0 then 0. else float_of_int mx /. mean in
  { per_pe = Array.copy per_pe; max = mx; min = mn; mean; imbalance }

let of_machine m =
  let p = Cf_machine.Topology.size (Cf_machine.Machine.topology m) in
  of_counts
    (Array.init p (fun pe -> Cf_machine.Machine.iterations_of m ~pe))

let pp ppf t =
  Format.fprintf ppf "max=%d min=%d mean=%.2f imbalance=%.3f" t.max t.min
    t.mean t.imbalance
