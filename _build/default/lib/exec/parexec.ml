open Cf_core
open Cf_loop
open Cf_machine

type placement = int -> int

let cyclic ~nprocs j =
  if nprocs < 1 then invalid_arg "Parexec.cyclic";
  (j - 1) mod nprocs

type report = {
  machine : Machine.t;
  remote_access : (int * string * int array) option;
  mismatches : (string * int array * int option * int option) list;
  per_pe_iterations : int array;
}

let ok r = r.remote_access = None && r.mismatches = []

let execute ?(init = Seqexec.default_init) ?(scalar = Seqexec.default_scalar)
    ?exact ?(allocate = true) ?(charge_distribution = false) ~machine
    ~placement ~strategy partition =
  let nest = Iter_partition.nest partition in
  let minimal = Strategy.uses_exact_analysis strategy in
  let exact =
    match exact with
    | Some e -> Some e
    | None -> if minimal then Some (Cf_dep.Exact.analyze nest) else None
  in
  let keep ~stmt_index iter =
    match exact with
    | Some e when minimal ->
      not (Cf_dep.Exact.is_redundant e ~stmt_index iter)
    | _ -> true
  in
  let nprocs = Topology.size (Machine.topology machine) in
  let block_pe j =
    let pe = placement j in
    if pe < 0 || pe >= nprocs then
      invalid_arg "Parexec.execute: placement outside the machine";
    pe
  in
  (* Allocation: walk every (surviving) access and give its element a
     local copy on the accessing block's processor.  Copies are
     block-local (the data blocks B^A_j are separate chunks of local
     memory): two blocks sharing a processor must not share cells, since
     anti/output dependences between them can point both ways and no
     block execution order would then be safe.  When the caller
     distributes data itself ([allocate = false]), plain per-processor
     names are used — the caller guarantees shared elements are
     read-only or block-exclusive (true of the paper's matmul
     distributions). *)
  let key block array =
    if allocate then array ^ "#" ^ string_of_int block else array
  in
  let idx = Nest.indices nest in
  let pos = Hashtbl.create 8 in
  Array.iteri (fun k v -> Hashtbl.replace pos v k) idx;
  let body = Array.of_list nest.Nest.body in
  (* Collect the per-(processor, copy) element sets first, then place
     them: either free of charge, or as one pipelined host message per
     copy when the caller wants distribution accounted. *)
  let needed : (int * string, (int list, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let allocate_for iter =
    let index v = iter.(Hashtbl.find pos v) in
    let block = Iter_partition.block_id_of_iteration partition iter in
    let pe = block_pe block in
    Array.iteri
      (fun si (s : Stmt.t) ->
        if keep ~stmt_index:si iter then
          List.iter
            (fun (r : Aref.t) ->
              let el = Array.to_list (Aref.eval index r) in
              let slot =
                match Hashtbl.find_opt needed (pe, key block r.Aref.array) with
                | Some t -> t
                | None ->
                  let t = Hashtbl.create 32 in
                  Hashtbl.replace needed (pe, key block r.Aref.array) t;
                  t
              in
              if not (Hashtbl.mem slot el) then
                Hashtbl.replace slot el
                  (init r.Aref.array (Array.of_list el)))
            (s.lhs :: Stmt.reads s))
      body
  in
  if allocate then begin
    Nest.iter_space nest allocate_for;
    Hashtbl.iter
      (fun (pe, name) slot ->
        let elements =
          Hashtbl.fold (fun el v acc -> (Array.of_list el, v) :: acc) slot []
        in
        if charge_distribution then
          Machine.host_send machine ~pe name elements
        else
          List.iter (fun (el, v) -> Machine.store machine ~pe name el v)
            elements)
      needed
  end;
  (* Execution, block by block.  For each element we record the value
     produced by the sequentially-latest write: with duplication, a
     co-located replica of another block may legally overwrite the local
     copy later in wall-clock order (a cross-block output dependence
     absorbed by replication), so reading memories after the fact would
     validate the wrong thing. *)
  let last_writer : (string * int list, (int list * int) * int) Hashtbl.t =
    Hashtbl.create 256
  in
  let remote = ref None in
  let blocks = Iter_partition.blocks partition in
  (try
     Array.iter
       (fun (b : Iter_partition.block) ->
         let pe = block_pe b.id in
         List.iter
           (fun iter ->
             let index v = iter.(Hashtbl.find pos v) in
             Array.iteri
               (fun si (s : Stmt.t) ->
                 if keep ~stmt_index:si iter then begin
                   let read (r : Aref.t) =
                     Machine.read machine ~pe
                       (key b.id r.Aref.array)
                       (Aref.eval index r)
                   in
                   let v = Expr.eval ~read ~scalar ~index s.rhs in
                   let el = Aref.eval index s.lhs in
                   Machine.write machine ~pe (key b.id s.lhs.Aref.array) el v;
                   let stamp = (Array.to_list iter, si) in
                   let k = (s.lhs.Aref.array, Array.to_list el) in
                   match Hashtbl.find_opt last_writer k with
                   | Some (stamp', _) when stamp' > stamp -> ()
                   | _ -> Hashtbl.replace last_writer k (stamp, v)
                 end)
               body)
           b.iterations;
         Machine.run_iterations machine ~pe (List.length b.iterations))
       blocks
   with Machine.Remote_access { pe; array; element } ->
     remote := Some (pe, array, element));
  (* Merge by sequentially-last writer and validate. *)
  let mismatches =
    match !remote with
    | Some _ -> []
    | None ->
      let golden =
        if minimal then Seqexec.run_filtered ~init ~scalar ~keep nest
        else Seqexec.run ~init ~scalar nest
      in
      List.filter_map
        (fun (a, el, expected) ->
          let got =
            match Hashtbl.find_opt last_writer (a, Array.to_list el) with
            | None -> None
            | Some (_, v) -> Some v
          in
          if got = Some expected then None
          else Some (a, el, Some expected, got))
        (Seqexec.bindings golden)
  in
  let per_pe_iterations =
    Array.init nprocs (fun pe -> Machine.iterations_of machine ~pe)
  in
  { machine; remote_access = !remote; mismatches; per_pe_iterations }

let pp_report ppf r =
  (match r.remote_access with
   | Some (pe, a, el) ->
     Format.fprintf ppf "REMOTE ACCESS: PE%d touched %s%a@," pe a
       Cf_linalg.Vec.pp_int el
   | None -> Format.fprintf ppf "communication-free: yes@,");
  if r.mismatches = [] then Format.fprintf ppf "results: match sequential@,"
  else
    List.iter
      (fun (a, el, want, got) ->
        let pp_opt ppf = function
          | Some v -> Format.fprintf ppf "%d" v
          | None -> Format.fprintf ppf "-"
        in
        Format.fprintf ppf "MISMATCH %s%a: expected %a, got %a@," a
          Cf_linalg.Vec.pp_int el pp_opt want pp_opt got)
      r.mismatches;
  Format.fprintf ppf "iterations per PE: %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list r.per_pe_iterations)
