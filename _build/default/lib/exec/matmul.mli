(** The paper's matrix-multiplication study (Section IV, loops L5/L5′/L5″).

    Three execution schemes over [C[i,j] += A[i,k]·B[k,j]]:

    - {e Sequential} (L5): the nonduplicate partitioning space is all of
      R³, so one processor runs everything; Table I's [p = 1] rows count
      only compute time.
    - {e Dup_b} (L5′): duplicate array [B] only; [Ψ' = span{(0,1,0),
      (0,0,1)}] leaves the [i] loop parallel.  Host sends each processor
      its row block of [A] (and of [C]) and {e broadcasts} all of [B].
    - {e Dup_ab} (L5″): duplicate both [A] and [B]; [Ψ'' = span{(0,0,1)}]
      leaves [i] and [j] parallel on a [√p × √p] mesh.  Host multicasts
      row blocks of [A] to mesh rows and column blocks of [B] to mesh
      columns.

    [analytic_time] evaluates the closed-form cost (the paper's T1, T2,
    T3) for arbitrary [M]; [simulate] actually distributes, runs, and
    verifies a small instance on the machine simulator — the distribution
    charges exactly match the analytic expressions. *)

open Cf_machine

type variant = Sequential | Dup_b | Dup_ab

val variant_name : variant -> string
(** ["L5"], ["L5'"], ["L5''"]. *)

val nest : m:int -> Cf_loop.Nest.t
(** The triple loop L5 for [M = m]. *)

val partitioning_space : variant -> m:int -> Cf_linalg.Subspace.t
(** [Ψ], [Ψ'] or [Ψ''] over R³. *)

val analytic_time : Cost.t -> variant -> m:int -> p:int -> float
(** T1/T2/T3 in seconds.  [p] must be 1 for [Sequential], and a perfect
    square for [Dup_ab]. *)

val speedup : Cost.t -> variant -> m:int -> p:int -> float
(** [analytic_time Sequential ~p:1 / analytic_time variant ~p]. *)

type run = {
  report : Parexec.report;
  makespan : float;
  distribution_time : float;
}

val simulate : ?cost:Cost.t -> variant -> m:int -> p:int -> run
(** Distribute + execute + verify on the simulator (small [m] only: the
    iteration space is enumerated).  The returned report proves the run
    touched only local data and matched the sequential product. *)
