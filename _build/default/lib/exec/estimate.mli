(** Analytic compute-makespan estimates for a partition.

    Section IV observes that with at least as many processors as blocks
    the execution time is dominated by the largest block, and that the
    cyclic assignment balances neighboring blocks otherwise.  This
    module computes those numbers without running the simulator — and
    the test suite checks they coincide with the simulator's compute
    times under the same placement. *)

open Cf_core

val max_block_makespan : ?cost:Cf_machine.Cost.t -> Iter_partition.t -> float
(** Compute time with unlimited processors: largest block × [t_comp]. *)

val cyclic_makespan :
  ?cost:Cf_machine.Cost.t -> procs:int -> Iter_partition.t -> float
(** Compute time under cyclic block placement on [procs] processors:
    the most-loaded processor's iteration total × [t_comp]. *)

val per_pe_iterations : procs:int -> Iter_partition.t -> int array
(** Iteration totals per processor under cyclic placement. *)

val speedup_limit : Iter_partition.t -> float
(** Total iterations / largest block — the plan's parallelism ceiling
    regardless of processor count. *)
