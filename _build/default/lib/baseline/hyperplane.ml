open Cf_linalg
open Cf_loop
open Cf_dep

let applicable ?search_radius nest =
  List.for_all
    (fun (d : Analysis.dep) ->
      match d.kind with
      | Kind.Input -> true
      | Kind.Flow | Kind.Anti | Kind.Output -> false)
    (Analysis.deps ?search_radius nest)

(* Candidate directions for q contributed by one array: the image under
   H_Aᵀ of the subspace of data-hyperplane normals orthogonal to every
   data-referenced vector. *)
let candidate_space nest name =
  let n = Nest.depth nest in
  let h = Nest.h_matrix nest name in
  let d = Array.length h in
  let drvs = Analysis.data_referenced_vectors nest name in
  let s_space =
    match drvs with
    | [] -> Subspace.full d
    | _ ->
      let rows = List.map Vec.of_int_array drvs in
      Subspace.complement (Subspace.span d rows)
  in
  let ht = Mat.transpose (Mat.of_rows (Array.to_list (Array.map Vec.of_int_array h))) in
  Subspace.span n (List.map (fun s -> Mat.mul_vec ht s) (Subspace.basis s_space))

let normal ?search_radius nest =
  let n = Nest.depth nest in
  let constraining =
    List.filter
      (fun a -> Analysis.deps_of_array ?search_radius nest a <> [])
      (Nest.arrays nest)
  in
  let candidates =
    List.fold_left
      (fun acc a -> Subspace.meet acc (candidate_space nest a))
      (Subspace.full n) constraining
  in
  match Subspace.int_basis candidates with
  | [] -> None
  | q :: _ -> Some q

let partitioning_space ?search_radius nest =
  let n = Nest.depth nest in
  if not (applicable ?search_radius nest) then Subspace.full n
  else
    match normal ?search_radius nest with
    | None -> Subspace.full n
    | Some q ->
      (* Ψ_RS = the hyperplane through the origin with normal q. *)
      Subspace.complement (Subspace.span n [ Vec.of_int_array q ])

type comparison = {
  loop_name : string;
  baseline_parallel_dims : int;
  ours_parallel_dims : int;
  ours_strategy : Cf_core.Strategy.t;
}

let compare_on ~name nest =
  let n = Nest.depth nest in
  let baseline = partitioning_space nest in
  let exact = Cf_dep.Exact.analyze nest in
  let best =
    List.fold_left
      (fun (best_dims, best_s) strategy ->
        let psi =
          Cf_core.Strategy.partitioning_space ~exact strategy nest
        in
        let dims = n - Subspace.dim psi in
        if dims > best_dims then (dims, strategy) else (best_dims, best_s))
      (-1, Cf_core.Strategy.Nonduplicate)
      Cf_core.Strategy.all
  in
  {
    loop_name = name;
    baseline_parallel_dims = n - Subspace.dim baseline;
    ours_parallel_dims = fst best;
    ours_strategy = snd best;
  }

let pp_comparison ppf c =
  Format.fprintf ppf
    "%-8s R&S hyperplane: %d parallel dim(s); this paper: %d (via %a)"
    c.loop_name c.baseline_parallel_dims c.ours_parallel_dims
    Cf_core.Strategy.pp c.ours_strategy
