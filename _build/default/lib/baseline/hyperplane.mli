(** The comparison baseline: Ramanujam & Sadayappan's communication-free
    hyperplane partitioning (IEEE TPDS 2(4), 1991 — reference [18]).

    Their method targets {e For-all} loops and slices the iteration space
    with one family of parallel [(n−1)]-dimensional hyperplanes
    [q·ī = k]; each array gets a matching family of data hyperplanes
    [s_A·ā = const] such that every reference from iteration hyperplane
    [k] lands on data hyperplane [α_A·k + β_A].  The construction
    requires, per array [A] that actually shares elements between
    iterations:

    - [s_A ⊥ r̄] for every data-referenced vector [r̄] of [A] (all
      references of one iteration hit one data hyperplane), and
    - [s_Aᵀ·H_A = α_A·qᵀ] (iteration hyperplanes map onto data
      hyperplanes).

    Hence [q] must lie in the image under [H_Aᵀ] of the orthogonal
    complement of [A]'s data-referenced vectors, for every constraining
    array simultaneously.  When such a [q] exists the iteration
    partition is the coset family of [Ψ_RS = \{x | q·x = 0\}] —
    exactly one forall dimension.  The paper's claim that its own method
    dominates follows: whenever [dim Ψ < n−1], the span-based
    partition exposes more parallel dimensions than any single
    hyperplane family can. *)

open Cf_linalg

val applicable : ?search_radius:int -> Cf_loop.Nest.t -> bool
(** True when the nest is For-all-convertible: no loop-carried flow,
    anti or output dependence (iterations may share reads only).
    L1/L3/L5 are not For-all loops; L2 and pure-map loops are. *)

val normal : ?search_radius:int -> Cf_loop.Nest.t -> int array option
(** A primitive integer hyperplane normal [q] satisfying the
    construction, or [None] when the constraining arrays admit no common
    direction. *)

val partitioning_space :
  ?search_radius:int -> Cf_loop.Nest.t -> Subspace.t
(** The induced iteration-partitioning space: [\{x | q·x = 0\}] (one
    forall dimension) when a normal exists {e and} the loop is For-all;
    the full space (sequential) otherwise. *)

type comparison = {
  loop_name : string;
  baseline_parallel_dims : int;
  ours_parallel_dims : int;  (** best over the four strategies *)
  ours_strategy : Cf_core.Strategy.t;
}

val compare_on : name:string -> Cf_loop.Nest.t -> comparison
(** Parallel-dimension comparison on one nest (the paper's qualitative
    Table-free claim, made measurable). *)

val pp_comparison : Format.formatter -> comparison -> unit
