lib/baseline/hyperplane.mli: Cf_core Cf_linalg Cf_loop Format Subspace
