lib/baseline/hyperplane.ml: Analysis Array Cf_core Cf_dep Cf_linalg Cf_loop Format Kind List Mat Nest Subspace Vec
