type t = { dims : int array }

let mesh dims =
  if Array.length dims = 0 then invalid_arg "Topology.mesh: no dimensions";
  Array.iter
    (fun d -> if d < 1 then invalid_arg "Topology.mesh: extent < 1")
    dims;
  { dims = Array.copy dims }

let linear p = mesh [| p |]

let square p =
  let r = int_of_float (sqrt (float_of_int p) +. 0.5) in
  if r * r <> p then invalid_arg "Topology.square: not a perfect square";
  mesh [| r; r |]

let grid_of_procs ~k p =
  if k < 1 || p < 1 then invalid_arg "Topology.grid_of_procs";
  let rec ipow b e = if e = 0 then 1 else b * ipow b (e - 1) in
  (* ⌊p^(1/k)⌋ by integer search: largest r with r^k ≤ p. *)
  let rec largest r = if ipow (r + 1) k <= p then largest (r + 1) else r in
  let root = largest 1 in
  Array.init k (fun i ->
      if i < k - 1 then root else p / ipow root (k - 1))

let dims t = Array.copy t.dims
let size t = Array.fold_left ( * ) 1 t.dims
let ndims t = Array.length t.dims

let rank_of_coords t coords =
  if Array.length coords <> Array.length t.dims then
    invalid_arg "Topology.rank_of_coords: arity";
  Array.iteri
    (fun i c ->
      if c < 0 || c >= t.dims.(i) then
        invalid_arg "Topology.rank_of_coords: out of range")
    coords;
  Array.fold_left ( + ) 0
    (Array.mapi
       (fun i c ->
         let stride = ref 1 in
         for j = i + 1 to Array.length t.dims - 1 do
           stride := !stride * t.dims.(j)
         done;
         c * !stride)
       coords)

let coords_of_rank t rank =
  if rank < 0 || rank >= size t then
    invalid_arg "Topology.coords_of_rank: out of range";
  let k = Array.length t.dims in
  let out = Array.make k 0 in
  let r = ref rank in
  for i = k - 1 downto 0 do
    out.(i) <- !r mod t.dims.(i);
    r := !r / t.dims.(i)
  done;
  out

let distance t a b =
  let ca = coords_of_rank t a and cb = coords_of_rank t b in
  let d = ref 0 in
  Array.iteri (fun i x -> d := !d + abs (x - cb.(i))) ca;
  !d

let diameter t = Array.fold_left (fun acc d -> acc + (d - 1)) 0 t.dims

let pp ppf t =
  Format.fprintf ppf "%s mesh"
    (String.concat "x" (Array.to_list (Array.map string_of_int t.dims)))
