exception Remote_access of { pe : int; array : string; element : int array }

type event =
  | Send of { pe : int; array : string; size : int }
  | Broadcast of { array : string; size : int }
  | Multicast of { pes : int list; array : string; size : int }

type t = {
  topology : Topology.t;
  cost : Cost.t;
  memories : (string * int list, int) Hashtbl.t array;
  mutable dist_time : float;
  compute : float array;
  iterations : int array;
  mutable messages : int;
  mutable volume : int;
  mutable events : event list;  (* reverse issue order *)
}

let create topology cost =
  let p = Topology.size topology in
  {
    topology;
    cost;
    memories = Array.init p (fun _ -> Hashtbl.create 64);
    dist_time = 0.;
    compute = Array.make p 0.;
    iterations = Array.make p 0;
    messages = 0;
    volume = 0;
    events = [];
  }

let topology m = m.topology
let cost m = m.cost

let check_pe m pe =
  if pe < 0 || pe >= Topology.size m.topology then
    invalid_arg "Machine: processor rank out of range"

let key a el = (a, Array.to_list el)

let store m ~pe a el v =
  check_pe m pe;
  Hashtbl.replace m.memories.(pe) (key a el) v

let read m ~pe a el =
  check_pe m pe;
  match Hashtbl.find_opt m.memories.(pe) (key a el) with
  | Some v -> v
  | None -> raise (Remote_access { pe; array = a; element = Array.copy el })

let write m ~pe a el v =
  check_pe m pe;
  if Hashtbl.mem m.memories.(pe) (key a el) then
    Hashtbl.replace m.memories.(pe) (key a el) v
  else raise (Remote_access { pe; array = a; element = Array.copy el })

let holds m ~pe a el =
  check_pe m pe;
  Hashtbl.mem m.memories.(pe) (key a el)

let local_elements m ~pe =
  check_pe m pe;
  Hashtbl.fold
    (fun (a, el) v acc -> (a, Array.of_list el, v) :: acc)
    m.memories.(pe) []
  |> List.sort compare

let charge m ~words =
  m.dist_time <-
    m.dist_time +. m.cost.Cost.t_start
    +. (float_of_int words *. m.cost.Cost.t_comm);
  m.messages <- m.messages + 1

let host_send m ~pe a elements =
  check_pe m pe;
  let size = List.length elements in
  let hops = Topology.distance m.topology 0 pe + 1 in
  (* Cut-through: startup + size, plus pipeline fill over the path. *)
  charge m ~words:(size + hops - 1);
  m.volume <- m.volume + size;
  m.events <- Send { pe; array = a; size } :: m.events;
  List.iter (fun (el, v) -> store m ~pe a el v) elements

let host_broadcast m a elements =
  let size = List.length elements in
  let hops = Topology.diameter m.topology + 1 in
  (* Store-and-forward flooding along rows and columns. *)
  charge m ~words:(hops * size);
  m.volume <- m.volume + size;
  m.events <- Broadcast { array = a; size } :: m.events;
  for pe = 0 to Topology.size m.topology - 1 do
    List.iter (fun (el, v) -> store m ~pe a el v) elements
  done

let host_multicast m ~pes a elements =
  (match pes with [] -> invalid_arg "Machine.host_multicast: no targets" | _ -> ());
  List.iter (check_pe m) pes;
  let size = List.length elements in
  let hops =
    List.fold_left
      (fun acc pe -> max acc (Topology.distance m.topology 0 pe + 1))
      0 pes
  in
  (* Pipelined multicast: one pass down the column, one across the row —
     each element is retransmitted twice. *)
  charge m ~words:((2 * size) + hops);
  m.volume <- m.volume + size;
  m.events <- Multicast { pes; array = a; size } :: m.events;
  List.iter
    (fun pe -> List.iter (fun (el, v) -> store m ~pe a el v) elements)
    pes

let run_iterations m ~pe count =
  check_pe m pe;
  if count < 0 then invalid_arg "Machine.run_iterations";
  m.compute.(pe) <- m.compute.(pe) +. Cost.compute m.cost ~iterations:count;
  m.iterations.(pe) <- m.iterations.(pe) + count

let distribution_time m = m.dist_time

let compute_time m ~pe =
  check_pe m pe;
  m.compute.(pe)

let max_compute_time m = Array.fold_left max 0. m.compute
let makespan m = m.dist_time +. max_compute_time m
let message_count m = m.messages
let message_volume m = m.volume

let iterations_of m ~pe =
  check_pe m pe;
  m.iterations.(pe)

let memory_words m ~pe =
  check_pe m pe;
  Hashtbl.length m.memories.(pe)

let reset_stats m =
  m.dist_time <- 0.;
  m.messages <- 0;
  m.volume <- 0;
  m.events <- [];
  Array.fill m.compute 0 (Array.length m.compute) 0.;
  Array.fill m.iterations 0 (Array.length m.iterations) 0

let trace m = List.rev m.events

let pp_event ppf = function
  | Send { pe; array; size } ->
    Format.fprintf ppf "send %s[%d words] -> PE%d" array size pe
  | Broadcast { array; size } ->
    Format.fprintf ppf "broadcast %s[%d words] -> all" array size
  | Multicast { pes; array; size } ->
    Format.fprintf ppf "multicast %s[%d words] -> {%s}" array size
      (String.concat "," (List.map string_of_int pes))

let pp_stats ppf m =
  Format.fprintf ppf
    "@[<v>%a: %d msg(s), %d words, dist %.6fs, max compute %.6fs, makespan %.6fs@]"
    Topology.pp m.topology m.messages m.volume m.dist_time
    (max_compute_time m) (makespan m)
