lib/machine/cost.ml: Format
