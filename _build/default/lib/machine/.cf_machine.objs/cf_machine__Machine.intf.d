lib/machine/machine.mli: Cost Format Topology
