lib/machine/machine.ml: Array Cost Format Hashtbl List String Topology
