lib/machine/topology.ml: Array Format String
