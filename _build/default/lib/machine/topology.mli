(** Processor grid topologies (mesh multicomputers).

    Processors are identified both by grid coordinates and by a linear
    rank (row-major).  The host processor sits outside the mesh, attached
    to processor 0 — the paper's model for initial data distribution. *)

type t

val mesh : int array -> t
(** [mesh [|p1; ...; pk|]]: a k-dimensional grid; every extent ≥ 1. *)

val linear : int -> t
(** [linear p] = [mesh [|p|]]. *)

val square : int -> t
(** [square p] is the [√p × √p] mesh; [p] must be a perfect square. *)

val grid_of_procs : k:int -> int -> int array
(** The paper's shape rule for [p] processors and [k] forall dimensions:
    [p_i = ⌊p^(1/k)⌋] for [i < k] and [p_k = ⌊p / p_1^(k−1)⌋]. *)

val dims : t -> int array
val size : t -> int
val ndims : t -> int

val rank_of_coords : t -> int array -> int
val coords_of_rank : t -> int -> int array

val distance : t -> int -> int -> int
(** Manhattan distance between two ranks. *)

val diameter : t -> int
(** Longest shortest path in the mesh. *)

val pp : Format.formatter -> t -> unit
