(** Data reference graphs (Definition 6, Figs. 6–7).

    For an array [A], vertices are the write sites [w_1..w_m] and read
    sites [r_1..r_v] of [A] in textual order; edges are the data
    dependences between the sites, labelled with their kind. *)

open Cf_loop

type vertex = W of int | R of int
(** 1-based indices into the write / read site lists, matching the
    paper's [w_i], [r_j] notation. *)

type edge = { src : vertex; dst : vertex; kind : Kind.t; witness : int array }

type t = {
  array : string;
  writes : Nest.ref_site list;
  reads : Nest.ref_site list;
  edges : edge list;
}

val build : ?search_radius:int -> Nest.t -> string -> t
(** The data reference graph of one array of the nest. *)

val vertex_site : t -> vertex -> Nest.ref_site
val vertex_name : vertex -> string
(** ["w1"], ["r2"], ... *)

val edges_of_kind : t -> Kind.t -> edge list

val pp : Format.formatter -> t -> unit
(** Text rendering: one line per vertex with its reference, then one line
    per edge, e.g. [w1 --d^o--> w2]. *)

val to_dot : t -> string
(** Graphviz rendering (for documentation; no dot binary required). *)
