lib/dep/analysis.ml: Aref Array Cf_linalg Cf_loop Cf_rational Format Kind List Nest Oint Witness
