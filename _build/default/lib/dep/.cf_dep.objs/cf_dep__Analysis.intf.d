lib/dep/analysis.mli: Cf_loop Format Kind Nest
