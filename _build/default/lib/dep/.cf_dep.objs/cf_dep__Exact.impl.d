lib/dep/exact.ml: Analysis Aref Array Cf_loop Format Hashtbl Kind List Nest Stmt String
