lib/dep/graph.mli: Cf_loop Format Kind Nest
