lib/dep/exact.mli: Analysis Cf_loop Format Kind Nest
