lib/dep/witness.ml: Array Babai Cf_lattice Cf_linalg Intlin List Lll Mat Vec
