lib/dep/graph.ml: Analysis Aref Buffer Cf_loop Format Kind List Nest Printf
