lib/dep/witness.mli: Cf_linalg Vec
