lib/dep/kind.mli: Cf_loop Format
