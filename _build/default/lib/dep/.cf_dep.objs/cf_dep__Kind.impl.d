lib/dep/kind.ml: Cf_loop Format
