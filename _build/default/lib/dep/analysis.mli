(** Symbolic dependence analysis of a loop nest.

    All results are computed from the uniformly-generated reference
    structure: for every ordered pair of reference sites of an array the
    dependence equation [H·t = c_src − c_dst] is solved over the integer
    points of the iteration-difference box, and a dependence is reported
    when a witness of the right lexicographic sign exists. *)

open Cf_loop

type dep = {
  array : string;
  src : Nest.ref_site;  (** executes first *)
  dst : Nest.ref_site;
  kind : Kind.t;
  witness : int array;  (** an iteration difference [i_dst − i_src] realizing it *)
}

val site_order : Nest.ref_site -> int
(** Intra-iteration execution order: statement by statement, the reads of
    a statement before its write. *)

val pp_dep : Format.formatter -> dep -> unit

val deps_of_array : ?search_radius:int -> Nest.t -> string -> dep list
(** All dependences carried by one array, every (src, dst) site pair with
    a realizable witness.  Requires the array to be uniformly generated
    ([Invalid_argument] otherwise). *)

val deps : ?search_radius:int -> Nest.t -> dep list
(** All dependences of the nest, array by array. *)

val has_flow_dep : ?search_radius:int -> Nest.t -> string -> bool

type duplicability = Fully | Partially
(** Definition 5: an array with no flow dependence is fully duplicable;
    one with flow dependences only partially. *)

val duplicability : ?search_radius:int -> Nest.t -> string -> duplicability
val pp_duplicability : Format.formatter -> duplicability -> unit

val data_referenced_vectors : Nest.t -> string -> int array list
(** Definition 1: the vectors [c_j − c_k] over all unordered pairs of
    distinct references ([j < k] in textual order), deduplicated. *)
