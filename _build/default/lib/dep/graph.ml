open Cf_loop

type vertex = W of int | R of int

type edge = { src : vertex; dst : vertex; kind : Kind.t; witness : int array }

type t = {
  array : string;
  writes : Nest.ref_site list;
  reads : Nest.ref_site list;
  edges : edge list;
}

let site_key (s : Nest.ref_site) = (s.stmt_index, s.site_index)

let build ?search_radius nest name =
  let sites = Nest.sites_of_array nest name in
  let writes = List.filter (fun s -> s.Nest.access = Nest.Write) sites in
  let reads = List.filter (fun s -> s.Nest.access = Nest.Read) sites in
  let vertex_of (s : Nest.ref_site) =
    let index_in l =
      let rec go k = function
        | [] -> raise Not_found
        | x :: rest ->
          if site_key x = site_key s then k else go (k + 1) rest
      in
      go 1 l
    in
    match s.access with
    | Nest.Write -> W (index_in writes)
    | Nest.Read -> R (index_in reads)
  in
  let edges =
    List.map
      (fun (d : Analysis.dep) ->
        {
          src = vertex_of d.src;
          dst = vertex_of d.dst;
          kind = d.kind;
          witness = d.witness;
        })
      (Analysis.deps_of_array ?search_radius nest name)
  in
  { array = name; writes; reads; edges }

let vertex_site g = function
  | W i -> List.nth g.writes (i - 1)
  | R i -> List.nth g.reads (i - 1)

let vertex_name = function
  | W i -> Printf.sprintf "w%d" i
  | R i -> Printf.sprintf "r%d" i

let edges_of_kind g k = List.filter (fun e -> Kind.equal e.kind k) g.edges

let pp ppf g =
  Format.fprintf ppf "@[<v>data reference graph G^%s:@," g.array;
  List.iteri
    (fun k (s : Nest.ref_site) ->
      Format.fprintf ppf "  w%d = %a@," (k + 1) Aref.pp s.aref)
    g.writes;
  List.iteri
    (fun k (s : Nest.ref_site) ->
      Format.fprintf ppf "  r%d = %a@," (k + 1) Aref.pp s.aref)
    g.reads;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %s --%s--> %s@," (vertex_name e.src)
        (Kind.symbol e.kind) (vertex_name e.dst))
    g.edges;
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"G_%s\" {\n" g.array);
  List.iteri
    (fun k (s : Nest.ref_site) ->
      Buffer.add_string buf
        (Printf.sprintf "  w%d [label=\"%s\"];\n" (k + 1)
           (Format.asprintf "%a" Aref.pp s.aref)))
    g.writes;
  List.iteri
    (fun k (s : Nest.ref_site) ->
      Buffer.add_string buf
        (Printf.sprintf "  r%d [label=\"%s\"];\n" (k + 1)
           (Format.asprintf "%a" Aref.pp s.aref)))
    g.reads;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" (vertex_name e.src)
           (vertex_name e.dst) (Kind.symbol e.kind)))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
