(** Data-dependence kinds (the paper's δ^f, δ^a, δ^o, δ^i). *)

type t = Flow | Anti | Output | Input

val of_accesses : src:Cf_loop.Nest.access -> dst:Cf_loop.Nest.access -> t
(** Kind of a dependence whose source executes first:
    write→read = flow, read→write = anti, write→write = output,
    read→read = input. *)

val equal : t -> t -> bool
val to_string : t -> string
(** ["flow"], ["anti"], ["output"], ["input"]. *)

val symbol : t -> string
(** The paper's notation: ["d^f"], ["d^a"], ["d^o"], ["d^i"]. *)

val pp : Format.formatter -> t -> unit
