open Cf_linalg
open Cf_lattice

let default_radius = 6

let rational_solution h r =
  let m = Mat.of_rows (Array.to_list (Array.map Vec.of_int_array h)) in
  Mat.solve m (Vec.of_int_array r)

let integer_solution h r = Intlin.solve h r

let scan ?(search_radius = default_radius) ~h ~halfwidths r k =
  match Intlin.solve h r with
  | None -> k None []
  | Some particular ->
    (* LLL-reduce the kernel lattice so the Babai rounding that anchors
       the boxed enumeration is reliable even for skewed kernels. *)
    let lattice = Lll.reduce (Intlin.kernel h) in
    k (Some particular)
      (Babai.enumerate_in_box ~particular ~lattice ~halfwidths ~search_radius)

let realizable ?search_radius ~h ~halfwidths r =
  scan ?search_radius ~h ~halfwidths r (fun _ found ->
      match found with [] -> None | t :: _ -> Some t)

let witnesses ?search_radius ~h ~halfwidths r =
  scan ?search_radius ~h ~halfwidths r (fun _ found -> found)

let lex_sign t =
  let rec go k =
    if k = Array.length t then 0
    else if t.(k) > 0 then 1
    else if t.(k) < 0 then -1
    else go (k + 1)
  in
  go 0

let lex_positive t = lex_sign t > 0
let lex_negative t = lex_sign t < 0

let directed_witness ?search_radius ~h ~halfwidths ~src_before_dst r =
  let ok t = lex_positive t || (lex_sign t = 0 && src_before_dst) in
  scan ?search_radius ~h ~halfwidths r (fun _ found -> List.find_opt ok found)
