(** Symbolic solutions of the dependence equation [H·t = r].

    A data-referenced vector [r = c_a − c_b] links two reference sites of
    an array with common matrix [H]: iterations [i_a], [i_b] touch the
    same element exactly when [H·(i_b − i_a) = r].  This module answers
    the questions the partitioning theory asks about that equation:
    rational solvability (Def. 4 condition (1)), existence of an integer
    solution realizable as an in-bounds iteration difference (condition
    (2)), and signed witnesses for classifying dependence direction. *)

open Cf_linalg

val default_radius : int
(** Default Babai search radius (see {!Cf_lattice.Babai.find_in_box}). *)

val rational_solution : int array array -> int array -> Vec.t option
(** A particular rational solution of [H·t = r], or [None] when the
    system is inconsistent over Q. *)

val integer_solution : int array array -> int array -> int array option
(** A particular integer solution of [H·t = r] (no box constraint). *)

val realizable :
  ?search_radius:int ->
  h:int array array ->
  halfwidths:int array ->
  int array ->
  int array option
(** [realizable ~h ~halfwidths r] is an integer solution [t'] of
    [h·t' = r] with [|t'_k| ≤ halfwidths_k] — i.e. condition (2) of
    Definition 4 against the iteration-difference box — or [None]. *)

val witnesses :
  ?search_radius:int ->
  h:int array array ->
  halfwidths:int array ->
  int array ->
  int array list
(** All boxed integer solutions found by the bounded lattice scan. *)

val directed_witness :
  ?search_radius:int ->
  h:int array array ->
  halfwidths:int array ->
  src_before_dst:bool ->
  int array ->
  int array option
(** [directed_witness ~h ~halfwidths ~src_before_dst r] is a boxed
    integer solution [t] that makes the *source* site execute first:
    [t] lexicographically positive, or zero when [src_before_dst] says
    the source precedes the destination within one iteration.  This is
    the primitive behind flow/anti classification. *)

val lex_positive : int array -> bool
val lex_negative : int array -> bool
