open Cf_rational
open Cf_loop

type dep = {
  array : string;
  src : Nest.ref_site;
  dst : Nest.ref_site;
  kind : Kind.t;
  witness : int array;
}

let site_order (s : Nest.ref_site) =
  (2 * s.stmt_index) + match s.access with Nest.Read -> 0 | Nest.Write -> 1

(* Within one statement the reads evaluate left to right, then the write:
   compare on (statement, read/write phase, textual read position). *)
let site_order_triple (s : Nest.ref_site) =
  ( s.stmt_index,
    (match s.access with Nest.Read -> 0 | Nest.Write -> 1),
    s.site_index )

let pp_site ppf (s : Nest.ref_site) =
  Format.fprintf ppf "%s@S%d" (Format.asprintf "%a" Aref.pp s.aref)
    (s.stmt_index + 1)

let pp_dep ppf d =
  Format.fprintf ppf "%a: %a -> %a  t=%a" Kind.pp d.kind pp_site d.src pp_site
    d.dst Cf_linalg.Vec.pp_int d.witness

let sub_vec a b = Array.map2 Oint.sub a b

let deps_of_array ?search_radius t name =
  let order = Nest.indices t in
  let h = Nest.h_matrix t name in
  let halfwidths = Nest.extent_halfwidths t in
  let sites = Nest.sites_of_array t name in
  let offset (s : Nest.ref_site) = snd (Aref.matrix order s.aref) in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst ->
          let same_site =
            src.Nest.stmt_index = dst.Nest.stmt_index
            && src.site_index = dst.site_index
          in
          let r = sub_vec (offset src) (offset dst) in
          let src_before_dst =
            (not same_site) && site_order_triple src < site_order_triple dst
          in
          match
            Witness.directed_witness ?search_radius ~h ~halfwidths
              ~src_before_dst r
          with
          | Some w ->
            Some
              {
                array = name;
                src;
                dst;
                kind = Kind.of_accesses ~src:src.access ~dst:dst.access;
                witness = w;
              }
          | None -> None)
        sites)
    sites

let deps ?search_radius t =
  List.concat_map (deps_of_array ?search_radius t) (Nest.arrays t)

let has_flow_dep ?search_radius t name =
  List.exists
    (fun d -> Kind.equal d.kind Kind.Flow)
    (deps_of_array ?search_radius t name)

type duplicability = Fully | Partially

let duplicability ?search_radius t name =
  if has_flow_dep ?search_radius t name then Partially else Fully

let pp_duplicability ppf = function
  | Fully -> Format.pp_print_string ppf "fully duplicable"
  | Partially -> Format.pp_print_string ppf "partially duplicable"

let data_referenced_vectors t name =
  let refs = Nest.distinct_refs t name in
  let rec pairs = function
    | [] -> []
    | (_, c_j) :: rest ->
      List.map (fun (_, c_k) -> sub_vec c_j c_k) rest @ pairs rest
  in
  let all = pairs refs in
  List.fold_left (fun acc v -> if List.mem v acc then acc else acc @ [ v ]) []
    all
