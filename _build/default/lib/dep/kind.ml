type t = Flow | Anti | Output | Input

let of_accesses ~src ~dst =
  match (src, dst) with
  | Cf_loop.Nest.Write, Cf_loop.Nest.Read -> Flow
  | Cf_loop.Nest.Read, Cf_loop.Nest.Write -> Anti
  | Cf_loop.Nest.Write, Cf_loop.Nest.Write -> Output
  | Cf_loop.Nest.Read, Cf_loop.Nest.Read -> Input

let equal = ( = )

let to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Input -> "input"

let symbol = function
  | Flow -> "d^f"
  | Anti -> "d^a"
  | Output -> "d^o"
  | Input -> "d^i"

let pp ppf k = Format.pp_print_string ppf (to_string k)
