lib/linalg/mat.mli: Cf_rational Format Rat Vec
