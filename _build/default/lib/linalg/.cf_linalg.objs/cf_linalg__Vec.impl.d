lib/linalg/vec.ml: Array Cf_rational Format Oint Rat
