lib/linalg/subspace.mli: Format Vec
