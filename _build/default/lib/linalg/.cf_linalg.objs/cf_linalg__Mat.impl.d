lib/linalg/mat.ml: Array Cf_rational Format List Option Rat Vec
