lib/linalg/subspace.ml: Array Format List Mat Vec
