lib/linalg/vec.mli: Cf_rational Format Rat
