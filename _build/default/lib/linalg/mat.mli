(** Dense matrices over the rationals, row-major.

    A matrix is an array of row vectors; the empty matrix with 0 rows is
    permitted (its column count must then be supplied where it matters). *)

open Cf_rational

type t = Vec.t array

val rows : t -> int
val cols : t -> int
(** [cols m] raises [Invalid_argument] on a 0-row matrix (use the calling
    context's dimension instead). *)

val make : int -> int -> Rat.t -> t
val zero : int -> int -> t
val identity : int -> t
val of_int_rows : int list list -> t
val of_rows : Vec.t list -> t
val to_rows : t -> Vec.t list
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t
val copy : t -> t
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is [m · v] (v as a column vector). *)

val mul_int_vec : t -> int array -> Vec.t
(** [mul_int_vec m v] is [m · v] for an integer vector [v]. *)

type echelon = {
  rref : t;              (** reduced row echelon form *)
  rank : int;
  pivots : int array;    (** pivot column of each of the first [rank] rows *)
  transform : t;         (** invertible [E] with [E · original = rref] *)
}

val rref : t -> echelon
(** Gauss–Jordan elimination with exact arithmetic. *)

val rank : t -> int

val kernel : t -> Vec.t list
(** [kernel m] is a basis of the right null space \{x | m·x = 0\}, derived
    from the reduced row echelon form (free-variable parameterization).
    The empty list means the kernel is trivial. *)

val solve : t -> Vec.t -> Vec.t option
(** [solve m b] is a particular solution [x] of [m·x = b], or [None] when
    the system is inconsistent. *)

val inverse : t -> t option
(** [inverse m] for square [m]; [None] when singular. *)

val det : t -> Rat.t
(** Determinant of a square matrix (fraction-free via rref bookkeeping). *)

val is_singular : t -> bool
(** True when a square matrix has no inverse. *)

val pp : Format.formatter -> t -> unit
