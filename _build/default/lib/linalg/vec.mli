(** Dense vectors over the rationals.

    A vector is an immutable-by-convention [Rat.t array]; functions here
    never mutate their arguments and always return fresh arrays. *)

open Cf_rational

type t = Rat.t array

val dim : t -> int
val make : int -> Rat.t -> t
val zero : int -> t
val of_int_array : int array -> t
val of_int_list : int list -> t
val of_list : Rat.t list -> t
val to_list : t -> Rat.t list
val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of dimension [n]
    (0-indexed).  Raises [Invalid_argument] if [i] is out of range. *)

val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val dot : t -> t -> Rat.t
val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic comparison; vectors must have equal dimension. *)

val is_zero : t -> bool
val is_integer : t -> bool
(** True when every component is an integer. *)

val to_int_exn : t -> int array
(** Raises [Invalid_argument] when some component is not an integer. *)

val map2 : (Rat.t -> Rat.t -> Rat.t) -> t -> t -> t
val first_nonzero : t -> int option
(** Index of the leading (first) nonzero component, if any. *)

val lex_sign : t -> int
(** Sign of the leading nonzero component; [0] for the zero vector.
    A vector is lexicographically positive iff [lex_sign v > 0]. *)

val clear_denominators : t -> int array
(** [clear_denominators v] is the integer vector [l * v] where [l] is the
    least common multiple of the denominators, further divided by the gcd
    of its entries so the result is primitive (gcd 1).  The zero vector
    maps to the zero integer vector. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(a, b, c)]. *)

val pp_int : Format.formatter -> int array -> unit
(** Prints an integer vector as [(a, b, c)]. *)
