open Cf_rational

type t = Vec.t array

let rows = Array.length

let cols m =
  if rows m = 0 then invalid_arg "Mat.cols: empty matrix"
  else Vec.dim m.(0)

let make r c x = Array.init r (fun _ -> Vec.make c x)
let zero r c = make r c Rat.zero

let identity n =
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then Rat.one else Rat.zero))

let of_int_rows l = Array.of_list (List.map Vec.of_int_list l)
let of_rows l = Array.of_list (List.map Vec.copy l)
let to_rows m = Array.to_list (Array.map Vec.copy m)
let row m i = Vec.copy m.(i)
let col m j = Array.map (fun r -> r.(j)) m

let transpose m =
  if rows m = 0 then [||]
  else Array.init (cols m) (fun j -> col m j)

let copy m = Array.map Vec.copy m

let equal a b =
  rows a = rows b
  && (rows a = 0 || Array.for_all2 Vec.equal a b)

let check_same a b =
  if rows a <> rows b || (rows a > 0 && cols a <> cols b) then
    invalid_arg "Mat: shape mismatch"

let add a b = check_same a b; Array.map2 Vec.add a b
let sub a b = check_same a b; Array.map2 Vec.sub a b
let scale k m = Array.map (Vec.scale k) m

let mul_vec m v = Array.map (fun r -> Vec.dot r v) m
let mul_int_vec m v = mul_vec m (Vec.of_int_array v)

let mul a b =
  if rows a > 0 && rows b > 0 && cols a <> rows b then
    invalid_arg "Mat.mul: shape mismatch";
  let bt = transpose b in
  Array.map (fun ra -> Array.map (fun cb -> Vec.dot ra cb) bt) a

type echelon = {
  rref : t;
  rank : int;
  pivots : int array;
  transform : t;
}

let rref m =
  let r = rows m in
  let work = copy m in
  let e = ref (identity r) in
  if r = 0 then { rref = work; rank = 0; pivots = [||]; transform = !e }
  else begin
    let c = cols m in
    let pivots = ref [] in
    let prow = ref 0 in
    for j = 0 to c - 1 do
      if !prow < r then begin
        (* Find a pivot in column j at or below !prow. *)
        let k = ref (-1) in
        (try
           for i = !prow to r - 1 do
             if not (Rat.is_zero work.(i).(j)) then begin
               k := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !k >= 0 then begin
          let swap arr i i' =
            let t = arr.(i) in
            arr.(i) <- arr.(i');
            arr.(i') <- t
          in
          swap work !prow !k;
          swap !e !prow !k;
          let inv_p = Rat.inv work.(!prow).(j) in
          work.(!prow) <- Vec.scale inv_p work.(!prow);
          !e.(!prow) <- Vec.scale inv_p !e.(!prow);
          for i = 0 to r - 1 do
            if i <> !prow && not (Rat.is_zero work.(i).(j)) then begin
              let f = work.(i).(j) in
              work.(i) <- Vec.sub work.(i) (Vec.scale f work.(!prow));
              !e.(i) <- Vec.sub !e.(i) (Vec.scale f !e.(!prow))
            end
          done;
          pivots := j :: !pivots;
          incr prow
        end
      end
    done;
    {
      rref = work;
      rank = !prow;
      pivots = Array.of_list (List.rev !pivots);
      transform = !e;
    }
  end

let rank m = (rref m).rank

let kernel m =
  if rows m = 0 then invalid_arg "Mat.kernel: empty matrix (unknown width)";
  let c = cols m in
  let { rref = rr; rank = rk; pivots; _ } = rref m in
  let is_pivot = Array.make c false in
  Array.iter (fun j -> is_pivot.(j) <- true) pivots;
  let free = ref [] in
  for j = c - 1 downto 0 do
    if not is_pivot.(j) then free := j :: !free
  done;
  let basis_for jfree =
    let v = Vec.zero c in
    v.(jfree) <- Rat.one;
    (* Pivot row i constrains x_{pivots.(i)} = - sum over free cols. *)
    for i = 0 to rk - 1 do
      v.(pivots.(i)) <- Rat.neg rr.(i).(jfree)
    done;
    v
  in
  List.map basis_for !free

let solve m b =
  if rows m <> Vec.dim b then invalid_arg "Mat.solve: shape mismatch";
  if rows m = 0 then Some [||]
  else begin
    let c = cols m in
    (* Row reduce the augmented matrix [m | b]. *)
    let aug =
      Array.init (rows m) (fun i ->
          Array.init (c + 1) (fun j -> if j < c then m.(i).(j) else b.(i)))
    in
    let { rref = rr; rank = rk; pivots; _ } = rref aug in
    (* Inconsistent iff some pivot lands in the augmented column. *)
    if Array.exists (fun j -> j = c) pivots then None
    else begin
      let x = Vec.zero c in
      for i = 0 to rk - 1 do
        x.(pivots.(i)) <- rr.(i).(c)
      done;
      Some x
    end
  end

let inverse m =
  let n = rows m in
  if n = 0 then Some [||]
  else if cols m <> n then invalid_arg "Mat.inverse: not square"
  else
    let { rank = rk; transform; _ } = rref m in
    if rk = n then Some transform else None

let det m =
  let n = rows m in
  if n = 0 then Rat.one
  else if cols m <> n then invalid_arg "Mat.det: not square"
  else begin
    (* Fraction-free-ish Gaussian elimination tracking the determinant. *)
    let work = copy m in
    let d = ref Rat.one in
    (try
       for j = 0 to n - 1 do
         let k = ref (-1) in
         (try
            for i = j to n - 1 do
              if not (Rat.is_zero work.(i).(j)) then begin
                k := i;
                raise Exit
              end
            done
          with Exit -> ());
         if !k < 0 then begin
           d := Rat.zero;
           raise Exit
         end;
         if !k <> j then begin
           let t = work.(j) in
           work.(j) <- work.(!k);
           work.(!k) <- t;
           d := Rat.neg !d
         end;
         d := Rat.mul !d work.(j).(j);
         let inv_p = Rat.inv work.(j).(j) in
         for i = j + 1 to n - 1 do
           if not (Rat.is_zero work.(i).(j)) then begin
             let f = Rat.mul work.(i).(j) inv_p in
             work.(i) <- Vec.sub work.(i) (Vec.scale f work.(j))
           end
         done
       done
     with Exit -> ());
    !d
  end

let is_singular m = Option.is_none (inverse m)

let pp ppf m =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
       Vec.pp)
    m
