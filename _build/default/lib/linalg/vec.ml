open Cf_rational

type t = Rat.t array

let dim = Array.length
let make n x = Array.make n x
let zero n = make n Rat.zero
let of_int_array a = Array.map Rat.of_int a
let of_int_list l = of_int_array (Array.of_list l)
let of_list l = Array.of_list l
let to_list = Array.to_list

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis";
  Array.init n (fun j -> if j = i then Rat.one else Rat.zero)

let copy = Array.copy

let check_dim a b =
  if dim a <> dim b then invalid_arg "Vec: dimension mismatch"

let map2 f a b =
  check_dim a b;
  Array.init (dim a) (fun i -> f a.(i) b.(i))

let add a b = map2 Rat.add a b
let sub a b = map2 Rat.sub a b
let neg a = Array.map Rat.neg a
let scale k a = Array.map (Rat.mul k) a

let dot a b =
  check_dim a b;
  let acc = ref Rat.zero in
  for i = 0 to dim a - 1 do
    acc := Rat.add !acc (Rat.mul a.(i) b.(i))
  done;
  !acc

let equal a b = dim a = dim b && Array.for_all2 Rat.equal a b

let compare a b =
  check_dim a b;
  let rec go i =
    if i = dim a then 0
    else
      let c = Rat.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let is_zero a = Array.for_all Rat.is_zero a
let is_integer a = Array.for_all Rat.is_integer a

let to_int_exn a =
  if not (is_integer a) then invalid_arg "Vec.to_int_exn: non-integer entry";
  Array.map Rat.to_int_exn a

let first_nonzero a =
  let rec go i =
    if i = dim a then None
    else if not (Rat.is_zero a.(i)) then Some i
    else go (i + 1)
  in
  go 0

let lex_sign a =
  match first_nonzero a with None -> 0 | Some i -> Rat.sign a.(i)

let clear_denominators v =
  let l = Array.fold_left (fun acc x -> Oint.lcm acc (Rat.den x)) 1 v in
  let ints = Array.map (fun x -> Rat.to_int_exn (Rat.mul (Rat.of_int l) x)) v in
  let g = Array.fold_left Oint.gcd 0 ints in
  if g = 0 then ints else Array.map (fun x -> x / g) ints

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Rat.pp)
    v

let pp_int ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    v
