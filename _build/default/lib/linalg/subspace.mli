(** Linear subspaces of Q^n represented by a canonical basis.

    The basis is kept in reduced row echelon form, which makes equality,
    membership and dimension queries trivial and gives every subspace a
    unique representation.  The ambient dimension is stored explicitly so
    the zero subspace is representable. *)

type t

val ambient_dim : t -> int
val dim : t -> int

val zero : int -> t
(** [zero n] is the trivial subspace \{0\} of Q^n. *)

val full : int -> t
(** [full n] is Q^n itself. *)

val span : int -> Vec.t list -> t
(** [span n vs] is the subspace of Q^n spanned by [vs] (zero vectors and
    linear dependencies are tolerated).  Raises [Invalid_argument] when a
    vector's dimension differs from [n]. *)

val basis : t -> Vec.t list
(** Canonical (rref) basis; empty for the trivial subspace. *)

val int_basis : t -> int array list
(** Basis scaled to primitive integer vectors (gcd of entries = 1). *)

val mem : t -> Vec.t -> bool
val mem_int : t -> int array -> bool

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is true when [a ⊆ b]. *)

val join : t -> t -> t
(** [join a b] is the smallest subspace containing both, i.e.
    span(basis a ∪ basis b). *)

val join_all : int -> t list -> t

val meet : t -> t -> t
(** [meet a b] is the intersection [a ∩ b] (computed as the complement
    of the join of complements). *)

val add_vector : t -> Vec.t -> t

val complement : t -> t
(** [complement s] is the orthogonal complement of [s] in Q^n:
    \{x | ∀ v ∈ s, v·x = 0\}.  [dim (complement s) = n - dim s]. *)

val coset_key : t -> Vec.t -> Vec.t
(** [coset_key s v] is a canonical label of the coset [v + s]: the product
    [B·v] where [B]'s rows form the canonical basis of [complement s].
    Two vectors receive equal keys iff their difference lies in [s]. *)

val coset_key_int : t -> int array -> Vec.t

val is_full : t -> bool
val is_trivial : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [span{(1, 1), (0, 1/2)}]. *)
