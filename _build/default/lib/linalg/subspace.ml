
type t = {
  ambient : int;
  basis : Vec.t list; (* rows of a reduced row echelon form, no zero rows *)
}

let ambient_dim s = s.ambient
let dim s = List.length s.basis
let zero n =
  if n < 0 then invalid_arg "Subspace.zero";
  { ambient = n; basis = [] }

let canonicalize n vs =
  let vs = List.filter (fun v -> not (Vec.is_zero v)) vs in
  List.iter
    (fun v -> if Vec.dim v <> n then invalid_arg "Subspace: dimension mismatch")
    vs;
  match vs with
  | [] -> { ambient = n; basis = [] }
  | _ ->
    let m = Mat.of_rows vs in
    let { Mat.rref = rr; rank; _ } = Mat.rref m in
    let basis = ref [] in
    for i = rank - 1 downto 0 do
      basis := Vec.copy rr.(i) :: !basis
    done;
    { ambient = n; basis = !basis }

let span n vs = canonicalize n vs
let full n = span n (List.init n (fun i -> Vec.basis n i))
let basis s = List.map Vec.copy s.basis
let int_basis s = List.map Vec.clear_denominators s.basis

let mem s v =
  if Vec.dim v <> s.ambient then invalid_arg "Subspace.mem: dimension mismatch";
  if Vec.is_zero v then true
  else if s.basis = [] then false
  else
    (* v ∈ span(B) iff rank(B) = rank(B ∪ {v}). *)
    let b = Mat.of_rows s.basis in
    let b' = Mat.of_rows (s.basis @ [ v ]) in
    Mat.rank b = Mat.rank b'

let mem_int s v = mem s (Vec.of_int_array v)

let subset a b =
  a.ambient = b.ambient && List.for_all (fun v -> mem b v) a.basis

let equal a b = subset a b && subset b a

let join a b =
  if a.ambient <> b.ambient then invalid_arg "Subspace.join: ambient mismatch";
  canonicalize a.ambient (a.basis @ b.basis)

let join_all n l = List.fold_left join (zero n) l
let add_vector s v = canonicalize s.ambient (v :: s.basis)

let complement s =
  if s.basis = [] then full s.ambient
  else
    let m = Mat.of_rows s.basis in
    canonicalize s.ambient (Mat.kernel m)

let meet a b = complement (join (complement a) (complement b))

let coset_key s v =
  if Vec.dim v <> s.ambient then
    invalid_arg "Subspace.coset_key: dimension mismatch";
  let c = complement s in
  match c.basis with
  | [] -> [||]
  | rows -> Array.of_list (List.map (fun r -> Vec.dot r v) rows)

let coset_key_int s v = coset_key s (Vec.of_int_array v)
let is_full s = dim s = s.ambient
let is_trivial s = s.basis = []

let pp ppf s =
  if s.basis = [] then Format.fprintf ppf "span{}"
  else
    Format.fprintf ppf "span{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Vec.pp)
      s.basis
