lib/lattice/smith.ml: Array Cf_rational List Oint
