lib/lattice/lll.mli:
