lib/lattice/lll.ml: Array Cf_linalg Cf_rational Intlin List Mat Oint Rat Vec
