lib/lattice/babai.mli: Cf_linalg Vec
