lib/lattice/intlin.ml: Array Cf_linalg Cf_rational List Mat Oint Rat Vec
