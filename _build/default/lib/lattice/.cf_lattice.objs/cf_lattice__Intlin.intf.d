lib/lattice/intlin.mli:
