lib/lattice/babai.ml: Array Cf_linalg Cf_rational List Mat Oint Rat Stdlib Vec
