lib/lattice/smith.mli:
