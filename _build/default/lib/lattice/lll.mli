(** Lenstra–Lenstra–Lovász lattice basis reduction (δ = 3/4).

    The integer kernels produced by column reduction can be badly skewed
    (long, nearly parallel vectors), which degrades the Babai rounding
    used to find boxed dependence witnesses.  Reducing the basis first
    makes the rounding step reliable: on an LLL-reduced basis the nearest
    lattice point found by rounding is within a bounded factor of the
    true nearest point.  All arithmetic is exact (rational Gram–Schmidt
    over {!Cf_rational.Rat}). *)

val reduce : int array list -> int array list
(** [reduce basis] is an LLL-reduced basis of the same lattice.  The
    input vectors must be linearly independent and of equal dimension
    ([Invalid_argument] otherwise); the empty list reduces to itself. *)

val is_reduced : int array list -> bool
(** Checks the two LLL conditions (size-reduction and Lovász with
    δ = 3/4) — used by the tests. *)

val same_lattice : int array list -> int array list -> bool
(** True when the two independent families generate the same integer
    lattice (each vector of one is an integer combination of the other). *)
