(** Integer linear algebra: solving [A·t = r] over Z and integer kernels.

    The workhorse is a column-style Hermite reduction: elementary
    unimodular column operations bring [A] to a column echelon form [E]
    with [A·U = E].  From [E] and [U] we read off integer particular
    solutions and a lattice basis of the integer kernel
    \{t ∈ Z^n | A·t = 0\}. *)

type reduction = {
  echelon : int array array;  (** [d × n], column echelon: pivot of row block [i] in column [i] *)
  unimodular : int array array;  (** [n × n] with [A·U = echelon], [det U = ±1] *)
  rank : int;
  pivot_rows : int array;  (** row of the pivot for columns [0..rank-1], strictly increasing *)
}

val reduce : int array array -> reduction
(** [reduce a] computes the column echelon reduction of [a].
    [a] must be rectangular ([d] rows of equal length [n], [d ≥ 1], [n ≥ 1]). *)

val solve : int array array -> int array -> int array option
(** [solve a r] is an integer particular solution [t] of [a·t = r], or
    [None] when no integer solution exists (inconsistent over Q, or the
    rational solution violates divisibility). *)

val kernel : int array array -> int array list
(** [kernel a] is a lattice basis of \{t ∈ Z^n | a·t = 0\}; every integer
    solution of the homogeneous system is a unique integer combination of
    the basis vectors. *)

val mul_vec : int array array -> int array -> int array
(** [mul_vec a t] is the matrix-vector product over checked integers. *)

val is_unimodular : int array array -> bool
(** True when the square integer matrix has determinant ±1. *)
