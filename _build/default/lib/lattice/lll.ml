open Cf_rational
open Cf_linalg

let check_input basis =
  match basis with
  | [] -> 0
  | v :: rest ->
    let n = Array.length v in
    List.iter
      (fun w ->
        if Array.length w <> n then invalid_arg "Lll: ragged basis")
      rest;
    let m = Mat.of_rows (List.map Vec.of_int_array basis) in
    if Mat.rank m <> List.length basis then
      invalid_arg "Lll: dependent basis vectors";
    n

(* Exact Gram-Schmidt orthogonalization: returns (b*, mu, |b*|^2). *)
let gso b =
  let k = Array.length b in
  let bstar = Array.make k [||] in
  let mu = Array.make_matrix k k Rat.zero in
  let norms = Array.make k Rat.zero in
  for i = 0 to k - 1 do
    let v = ref (Vec.of_int_array b.(i)) in
    for j = 0 to i - 1 do
      let m =
        if Rat.is_zero norms.(j) then Rat.zero
        else Rat.div (Vec.dot (Vec.of_int_array b.(i)) bstar.(j)) norms.(j)
      in
      mu.(i).(j) <- m;
      v := Vec.sub !v (Vec.scale m bstar.(j))
    done;
    bstar.(i) <- !v;
    norms.(i) <- Vec.dot !v !v
  done;
  (bstar, mu, norms)

let delta = Rat.make 3 4

let lovasz_holds norms mu k =
  (* |b*_k|^2 >= (delta - mu_{k,k-1}^2) |b*_{k-1}|^2 *)
  let m = mu.(k).(k - 1) in
  Rat.( >= ) norms.(k) (Rat.mul (Rat.sub delta (Rat.mul m m)) norms.(k - 1))

let reduce basis =
  let n = check_input basis in
  ignore n;
  match basis with
  | [] | [ _ ] -> List.map Array.copy basis
  | _ ->
    let b = Array.of_list (List.map Array.copy basis) in
    let kmax = Array.length b in
    let subtract ~from ~what q =
      (* b.(from) <- b.(from) - q * b.(what) *)
      Array.iteri
        (fun i x -> b.(from).(i) <- Oint.sub b.(from).(i) (Oint.mul q x))
        (Array.copy b.(what))
    in
    let size_reduce k =
      for j = k - 1 downto 0 do
        (* Recompute mu after each subtraction: exact and cheap at
           analysis dimensions. *)
        let _, mu, _ = gso b in
        let q = Rat.round_nearest mu.(k).(j) in
        if q <> 0 then subtract ~from:k ~what:j q
      done
    in
    let k = ref 1 in
    while !k < kmax do
      size_reduce !k;
      let _, mu, norms = gso b in
      if lovasz_holds norms mu !k then incr k
      else begin
        let t = b.(!k) in
        b.(!k) <- b.(!k - 1);
        b.(!k - 1) <- t;
        k := max 1 (!k - 1)
      end
    done;
    Array.to_list b

let is_reduced basis =
  ignore (check_input basis);
  match basis with
  | [] | [ _ ] -> true
  | _ ->
    let b = Array.of_list basis in
    let _, mu, norms = gso b in
    let ok = ref true in
    for k = 1 to Array.length b - 1 do
      for j = 0 to k - 1 do
        if Rat.( > ) (Rat.abs mu.(k).(j)) (Rat.make 1 2) then ok := false
      done;
      if not (lovasz_holds norms mu k) then ok := false
    done;
    !ok

let same_lattice a b =
  match (a, b) with
  | [], [] -> true
  | [], _ | _, [] -> false
  | va :: _, vb :: _ ->
    Array.length va = Array.length vb
    && List.length a = List.length b
    &&
    let n = Array.length va in
    let columns vs =
      (* n x k matrix whose columns are the vectors *)
      Array.init n (fun i -> Array.of_list (List.map (fun v -> v.(i)) vs))
    in
    let in_lattice generators v = Intlin.solve (columns generators) v <> None in
    List.for_all (in_lattice a) b && List.for_all (in_lattice b) a
