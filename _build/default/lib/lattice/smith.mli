(** Smith normal form of integer matrices.

    For any [d × n] integer matrix [A] there are unimodular [U] ([d × d])
    and [V] ([n × n]) with [U·A·V = D], [D] diagonal with
    [s_1 | s_2 | ... | s_r] and zeros elsewhere.  The form gives an
    independent decision procedure for integer solvability of [A·t = r]
    (each transformed component must be divisible by its invariant
    factor), used in the test suite to cross-validate
    {!Intlin.solve}. *)

type t = {
  d : int array array;      (** the diagonal form, same shape as the input *)
  left : int array array;   (** unimodular [U] *)
  right : int array array;  (** unimodular [V] *)
  rank : int;
  divisors : int list;      (** the nonzero invariant factors, positive *)
}

val compute : int array array -> t
(** Raises [Invalid_argument] on an empty or ragged matrix. *)

val solvable : t -> int array -> bool
(** [solvable snf r] decides whether [A·t = r] has an integer solution:
    with [y = U·r], the system is solvable iff [s_i | y_i] for the
    diagonal entries and [y_i = 0] beyond the rank. *)

val solve : t -> int array -> int array option
(** An integer particular solution built from the form
    ([t = V·(y_i / s_i, ..., 0)]), or [None]. *)
