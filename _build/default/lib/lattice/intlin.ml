open Cf_rational
open Cf_linalg

type reduction = {
  echelon : int array array;
  unimodular : int array array;
  rank : int;
  pivot_rows : int array;
}

let check_rect a =
  let d = Array.length a in
  if d = 0 then invalid_arg "Intlin: empty matrix";
  let n = Array.length a.(0) in
  if n = 0 then invalid_arg "Intlin: zero-width matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Intlin: ragged matrix")
    a;
  (d, n)

let mul_vec a t =
  let _, n = check_rect a in
  if Array.length t <> n then invalid_arg "Intlin.mul_vec: shape mismatch";
  Array.map
    (fun row ->
      let acc = ref 0 in
      for j = 0 to n - 1 do
        acc := Oint.add !acc (Oint.mul row.(j) t.(j))
      done;
      !acc)
    a

(* Column operations applied simultaneously to the work matrix and U. *)
let swap_cols m j j' =
  Array.iter
    (fun row ->
      let t = row.(j) in
      row.(j) <- row.(j');
      row.(j') <- t)
    m

let addmul_col m ~dst ~src k =
  (* column dst += k * column src *)
  Array.iter
    (fun row -> row.(dst) <- Oint.add row.(dst) (Oint.mul k row.(src)))
    m

let neg_col m j =
  Array.iter (fun row -> row.(j) <- Oint.neg row.(j)) m

let reduce a =
  let d, n = check_rect a in
  let e = Array.map Array.copy a in
  let u = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
  let c = ref 0 in
  let pivot_rows = ref [] in
  for i = 0 to d - 1 do
    if !c < n then begin
      (* Gcd-reduce the entries e.(i).(j), j >= !c, down to one nonzero. *)
      let continue_reducing = ref true in
      while !continue_reducing do
        (* Find the column with the smallest nonzero |e.(i).(j)|, j >= !c. *)
        let best = ref (-1) in
        for j = !c to n - 1 do
          if e.(i).(j) <> 0
             && (!best < 0 || Oint.abs e.(i).(j) < Oint.abs e.(i).(!best))
          then best := j
        done;
        match !best with
        | -1 -> continue_reducing := false (* all zero: no pivot this row *)
        | b ->
          let others = ref false in
          for j = !c to n - 1 do
            if j <> b && e.(i).(j) <> 0 then begin
              others := true;
              let q = Oint.fdiv e.(i).(j) e.(i).(b) in
              addmul_col e ~dst:j ~src:b (Oint.neg q);
              addmul_col u ~dst:j ~src:b (Oint.neg q)
            end
          done;
          if not !others then begin
            (* b is the unique nonzero entry: promote it to the pivot slot. *)
            if b <> !c then begin
              swap_cols e b !c;
              swap_cols u b !c
            end;
            if e.(i).(!c) < 0 then begin
              neg_col e !c;
              neg_col u !c
            end;
            pivot_rows := i :: !pivot_rows;
            incr c;
            continue_reducing := false
          end
      done
    end
  done;
  {
    echelon = e;
    unimodular = u;
    rank = !c;
    pivot_rows = Array.of_list (List.rev !pivot_rows);
  }

let solve a r =
  let d, n = check_rect a in
  if Array.length r <> d then invalid_arg "Intlin.solve: shape mismatch";
  let { echelon = e; unimodular = u; rank; pivot_rows } = reduce a in
  (* Solve e·y = r by forward substitution on the pivot structure, then
     t = u·y.  y has zeros in the non-pivot coordinates. *)
  let y = Array.make n 0 in
  let consistent = ref true in
  let next_pivot = ref 0 in
  for i = 0 to d - 1 do
    if !consistent then begin
      let acc = ref r.(i) in
      for j = 0 to rank - 1 do
        acc := Oint.sub !acc (Oint.mul e.(i).(j) y.(j))
      done;
      if !next_pivot < rank && pivot_rows.(!next_pivot) = i then begin
        let p = e.(i).(!next_pivot) in
        if !acc mod p <> 0 then consistent := false
        else begin
          y.(!next_pivot) <- !acc / p;
          incr next_pivot
        end
      end
      else if !acc <> 0 then consistent := false
    end
  done;
  if not !consistent then None
  else
    Some
      (Array.init n (fun i ->
           let acc = ref 0 in
           for j = 0 to n - 1 do
             acc := Oint.add !acc (Oint.mul u.(i).(j) y.(j))
           done;
           !acc))

let kernel a =
  let _, n = check_rect a in
  let { unimodular = u; rank; _ } = reduce a in
  let col j = Array.init n (fun i -> u.(i).(j)) in
  List.init (n - rank) (fun k -> col (rank + k))

let is_unimodular m =
  let d, n = check_rect m in
  d = n
  &&
  let q = Mat.of_rows (Array.to_list (Array.map Vec.of_int_array m)) in
  let dt = Mat.det q in
  Rat.equal dt Rat.one || Rat.equal dt Rat.minus_one
