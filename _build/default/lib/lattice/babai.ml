open Cf_rational
open Cf_linalg

let coordinates ~basis v =
  match basis with
  | [] -> None
  | _ ->
    let b = Mat.of_rows (List.map Vec.of_int_array basis) in
    (* Least squares: solve (B·Bᵀ)·x = B·v; rows of b are basis vectors. *)
    let gram = Mat.mul b (Mat.transpose b) in
    let rhs = Mat.mul_vec b v in
    Mat.solve gram rhs

let lattice_combination basis coeffs =
  match basis with
  | [] -> [||]
  | first :: _ ->
    let n = Array.length first in
    let acc = Array.make n 0 in
    List.iteri
      (fun k bv ->
        for i = 0 to n - 1 do
          acc.(i) <- Oint.add acc.(i) (Oint.mul coeffs.(k) bv.(i))
        done)
      basis;
    acc

let round_point ~basis v =
  match coordinates ~basis v with
  | None -> Array.make (Vec.dim v) 0
  | Some x ->
    let coeffs = Array.map Rat.round_nearest x in
    lattice_combination basis coeffs

let in_box ~halfwidths t =
  Array.length t = Array.length halfwidths
  && Array.for_all2 (fun x w -> Stdlib.abs x <= w) t halfwidths

let candidate_cap = 100_000

(* Shared shell enumeration: calls [accept] on every point of
   [particular + lattice] that lands in the box, nearest coefficient
   shells first; stops when [accept] returns [false], the radius is
   exhausted, or the candidate cap is hit. *)
let scan_box ~particular ~lattice ~halfwidths ~search_radius accept =
  let n = Array.length particular in
  let add a b = Array.init n (fun i -> Oint.add a.(i) b.(i)) in
  match lattice with
  | [] ->
    if in_box ~halfwidths particular then ignore (accept particular)
  | _ ->
    let k = List.length lattice in
    let center =
      match coordinates ~basis:lattice (Vec.neg (Vec.of_int_array particular))
      with
      | None -> Array.make k 0
      | Some x -> Array.map Rat.round_nearest x
    in
    let continue_scan = ref true in
    let budget = ref candidate_cap in
    let coeffs = Array.make k 0 in
    let rec fill shell pos must_touch =
      if !continue_scan && !budget > 0 then
        if pos = k then begin
          if (not must_touch) || shell = 0 then begin
            decr budget;
            let c = Array.mapi (fun i off -> Oint.add center.(i) off) coeffs in
            let pt = add particular (lattice_combination lattice c) in
            if in_box ~halfwidths pt then
              if not (accept pt) then continue_scan := false
          end
        end
        else
          for off = -shell to shell do
            coeffs.(pos) <- off;
            fill shell (pos + 1) (must_touch && Stdlib.abs off <> shell)
          done
    in
    let shell = ref 0 in
    while !continue_scan && !shell <= search_radius && !budget > 0 do
      fill !shell 0 (!shell > 0);
      incr shell
    done

let find_in_box ~particular ~lattice ~halfwidths ~search_radius =
  let found = ref None in
  scan_box ~particular ~lattice ~halfwidths ~search_radius (fun pt ->
      found := Some pt;
      false);
  !found

let enumerate_in_box ~particular ~lattice ~halfwidths ~search_radius =
  let acc = ref [] in
  scan_box ~particular ~lattice ~halfwidths ~search_radius (fun pt ->
      if not (List.mem pt !acc) then acc := pt :: !acc;
      true);
  List.rev !acc
