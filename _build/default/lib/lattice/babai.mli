(** Nearest-lattice-point heuristics and boxed realizability.

    Definition 4 of the paper admits a data-referenced vector [r] into a
    reference space only when the affine set of integer solutions of
    [H·t = r] contains a vector expressible as a difference of two
    iterations, i.e. a point of the box [∏ [-w_k, w_k]] where [w_k] is the
    extent of loop level [k].  The solution set is [t0 + L] for a lattice
    [L]; we decide box membership by Babai rounding of [-t0] in the basis
    of [L], refined by a bounded enumeration of neighboring coefficient
    vectors.  For the small-rank lattices produced by loop analysis this
    is exact in practice, and the test suite cross-validates it against
    exhaustive enumeration on small iteration spaces. *)

open Cf_linalg

val coordinates : basis:int array list -> Vec.t -> Vec.t option
(** [coordinates ~basis v] expresses [v] in the (independent) lattice
    basis using a least-squares Gram solve: the result [x] minimizes
    [|v - B·x|] over Q.  [None] when the basis is empty. *)

val round_point : basis:int array list -> Vec.t -> int array
(** [round_point ~basis v] is the lattice point [B·round(x)] obtained by
    rounding each least-squares coordinate — Babai's rounding step.
    Returns the zero vector for an empty basis. *)

val in_box : halfwidths:int array -> int array -> bool
(** [in_box ~halfwidths t] tests [|t_k| <= halfwidths_k] componentwise. *)

val find_in_box :
  particular:int array ->
  lattice:int array list ->
  halfwidths:int array ->
  search_radius:int ->
  int array option
(** [find_in_box ~particular ~lattice ~halfwidths ~search_radius] looks
    for a point of [particular + lattice] inside the box.  Starting from
    the Babai rounding of [-particular], coefficient vectors within
    Chebyshev distance [search_radius] are enumerated (subject to an
    internal cap on the number of candidates).  Returns a witness point
    or [None] when no candidate lands in the box. *)

val enumerate_in_box :
  particular:int array ->
  lattice:int array list ->
  halfwidths:int array ->
  search_radius:int ->
  int array list
(** Like {!find_in_box} but collects every candidate that lands in the
    box (within the same radius and candidate cap), deduplicated.  Used
    by dependence classification to find witnesses of a required
    lexicographic sign. *)
