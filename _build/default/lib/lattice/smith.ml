open Cf_rational

type t = {
  d : int array array;
  left : int array array;
  right : int array array;
  rank : int;
  divisors : int list;
}

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

(* Row operations act on (work, left); column operations on (work, right). *)
let swap_rows m i i' =
  let t = m.(i) in
  m.(i) <- m.(i');
  m.(i') <- t

let addmul_row m ~dst ~src k =
  Array.iteri
    (fun j x -> m.(dst).(j) <- Oint.add m.(dst).(j) (Oint.mul k x))
    (Array.copy m.(src))

let neg_row m i = m.(i) <- Array.map Oint.neg m.(i)

let swap_cols m j j' =
  Array.iter
    (fun row ->
      let t = row.(j) in
      row.(j) <- row.(j');
      row.(j') <- t)
    m

let addmul_col m ~dst ~src k =
  Array.iter
    (fun row -> row.(dst) <- Oint.add row.(dst) (Oint.mul k row.(src)))
    m

let compute a =
  let dd = Array.length a in
  if dd = 0 then invalid_arg "Smith.compute: empty matrix";
  let nn = Array.length a.(0) in
  if nn = 0 then invalid_arg "Smith.compute: zero-width matrix";
  Array.iter
    (fun r -> if Array.length r <> nn then invalid_arg "Smith.compute: ragged")
    a;
  let w = Array.map Array.copy a in
  let u = identity dd and v = identity nn in
  let k = ref 0 in
  let continue_outer = ref true in
  while !continue_outer && !k < min dd nn do
    (* Find a pivot: the smallest-magnitude nonzero entry in the
       remaining submatrix. *)
    let best = ref None in
    for i = !k to dd - 1 do
      for j = !k to nn - 1 do
        if w.(i).(j) <> 0 then
          match !best with
          | Some (_, _, m) when Oint.abs w.(i).(j) >= m -> ()
          | _ -> best := Some (i, j, Oint.abs w.(i).(j))
      done
    done;
    match !best with
    | None -> continue_outer := false
    | Some (pi, pj, _) ->
      if pi <> !k then begin
        swap_rows w pi !k;
        swap_rows u pi !k
      end;
      if pj <> !k then begin
        swap_cols w pj !k;
        swap_cols v pj !k
      end;
      (* Reduce row and column k until the pivot divides everything in
         its row and column and the rest is zero. *)
      let clean = ref false in
      while not !clean do
        clean := true;
        for i = !k + 1 to dd - 1 do
          if w.(i).(!k) <> 0 then begin
            let q = Oint.fdiv w.(i).(!k) w.(!k).(!k) in
            addmul_row w ~dst:i ~src:!k (Oint.neg q);
            addmul_row u ~dst:i ~src:!k (Oint.neg q);
            if w.(i).(!k) <> 0 then begin
              (* Remainder smaller than the pivot: promote it. *)
              swap_rows w i !k;
              swap_rows u i !k;
              clean := false
            end
          end
        done;
        for j = !k + 1 to nn - 1 do
          if w.(!k).(j) <> 0 then begin
            let q = Oint.fdiv w.(!k).(j) w.(!k).(!k) in
            addmul_col w ~dst:j ~src:!k (Oint.neg q);
            addmul_col v ~dst:j ~src:!k (Oint.neg q);
            if w.(!k).(j) <> 0 then begin
              swap_cols w j !k;
              swap_cols v j !k;
              clean := false
            end
          end
        done
      done;
      (* Enforce the divisibility chain: if some remaining entry is not
         divisible by the pivot, fold its row in and redo this pivot. *)
      let offender = ref None in
      for i = !k + 1 to dd - 1 do
        for j = !k + 1 to nn - 1 do
          if !offender = None && w.(i).(j) mod w.(!k).(!k) <> 0 then
            offender := Some i
        done
      done;
      (match !offender with
       | Some i ->
         addmul_row w ~dst:!k ~src:i 1;
         addmul_row u ~dst:!k ~src:i 1
       | None ->
         if w.(!k).(!k) < 0 then begin
           neg_row w !k;
           neg_row u !k
         end;
         incr k)
  done;
  let rank = !k in
  let divisors = List.init rank (fun i -> w.(i).(i)) in
  { d = w; left = u; right = v; rank; divisors }

let mul_vec m x =
  Array.map
    (fun row ->
      let acc = ref 0 in
      Array.iteri (fun j v -> acc := Oint.add !acc (Oint.mul v x.(j))) row;
      !acc)
    m

let transformed_rhs t r =
  if Array.length r <> Array.length t.left then
    invalid_arg "Smith: rhs dimension mismatch";
  mul_vec t.left r

let solvable t r =
  let y = transformed_rhs t r in
  let ok = ref true in
  Array.iteri
    (fun i yi ->
      if i < t.rank then begin
        if yi mod t.d.(i).(i) <> 0 then ok := false
      end
      else if yi <> 0 then ok := false)
    y;
  !ok

let solve t r =
  if not (solvable t r) then None
  else begin
    let n = Array.length t.right in
    let y = transformed_rhs t r in
    let z = Array.make n 0 in
    for i = 0 to t.rank - 1 do
      z.(i) <- y.(i) / t.d.(i).(i)
    done;
    Some (mul_vec t.right z)
  end
