type t = { num : int; den : int }

let make n d =
  if d = 0 then raise Division_by_zero
  else
    let n, d = if d < 0 then (Oint.neg n, Oint.neg d) else (n, d) in
    if n = 0 then { num = 0; den = 1 }
    else
      let g = Oint.gcd n d in
      { num = n / g; den = d / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num a = a.num
let den a = a.den

let add a b =
  (* Pre-divide by the denominator gcd to keep intermediates small. *)
  let g = Oint.gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  make (Oint.add (Oint.mul a.num db) (Oint.mul b.num da)) (Oint.mul a.den db)

let neg a = { a with num = Oint.neg a.num }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to limit overflow exposure. *)
  let g1 = Oint.gcd a.num b.den and g2 = Oint.gcd b.num a.den in
  let n = Oint.mul (a.num / g1) (b.num / g2)
  and d = Oint.mul (a.den / g2) (b.den / g1) in
  if d < 0 then { num = Oint.neg n; den = Oint.neg d } else { num = n; den = d }

let inv a =
  if a.num = 0 then raise Division_by_zero
  else if a.num < 0 then { num = Oint.neg a.den; den = Oint.neg a.num }
  else { num = a.den; den = a.num }

let div a b = mul a (inv b)
let abs a = { a with num = Oint.abs a.num }
let equal a b = a.num = b.num && a.den = b.den
let sign a = compare a.num 0

let compare a b =
  (* a/b ? c/d  <=>  a*d ? c*b  (denominators positive). *)
  compare (Oint.mul a.num b.den) (Oint.mul b.num a.den)

let is_zero a = a.num = 0
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den = 1 then a.num else invalid_arg "Rat.to_int_exn: not an integer"

let floor a = Oint.fdiv a.num a.den
let ceil a = Oint.cdiv a.num a.den

let round_nearest a =
  (* floor (a + 1/2): ties round up. *)
  Oint.fdiv (Oint.add (Oint.mul 2 a.num) a.den) (Oint.mul 2 a.den)

let to_float a = float_of_int a.num /. float_of_int a.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let pp ppf a =
  if Stdlib.( = ) a.den 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Rat.of_string: %S" s) in
  match String.index_opt s '/' with
  | None -> ( match int_of_string_opt (String.trim s) with
              | Some n -> of_int n
              | None -> fail ())
  | Some i ->
    let n = String.trim (String.sub s 0 i)
    and d = String.trim (String.sub s (Stdlib.( + ) i 1)
                           (Stdlib.( - ) (String.length s) (Stdlib.( + ) i 1)))
    in
    (match (int_of_string_opt n, int_of_string_opt d) with
     | Some n, Some d when Stdlib.( <> ) d 0 -> make n d
     | _ -> fail ())
