(** Exact rational arithmetic.

    Values are kept normalized: the denominator is strictly positive and
    [gcd |num| den = 1].  Zero is represented as [0/1].  All arithmetic is
    overflow-checked through {!Oint} and raises [Oint.Overflow] rather than
    wrapping. *)

type t = private { num : int; den : int }
(** A normalized rational [num/den] with [den > 0]. *)

val make : int -> int -> t
(** [make n d] is the normalized rational [n/d].
    Raises [Division_by_zero] if [d = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] raises [Division_by_zero] when [b] is zero. *)

val neg : t -> t
val inv : t -> t
(** [inv a] raises [Division_by_zero] when [a] is zero. *)

val abs : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
(** [sign a] is [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_integer : t -> bool

val to_int_exn : t -> int
(** [to_int_exn a] is the integer value of [a].
    Raises [Invalid_argument] when [a] is not an integer. *)

val floor : t -> int
(** [floor a] is the largest integer [<= a]. *)

val ceil : t -> int
(** [ceil a] is the smallest integer [>= a]. *)

val round_nearest : t -> int
(** [round_nearest a] rounds to the nearest integer, ties toward
    positive infinity (Babai-style rounding for lattice reduction). *)

val to_float : t -> float

val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints ["7"] for integers and ["1/2"] otherwise. *)

val to_string : t -> string

val of_string : string -> t
(** Parses ["-3"], ["5/2"], ["0"]...
    Raises [Invalid_argument] on malformed input. *)
