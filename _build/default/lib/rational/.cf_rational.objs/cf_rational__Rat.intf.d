lib/rational/rat.mli: Format
