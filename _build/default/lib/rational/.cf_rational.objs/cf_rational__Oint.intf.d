lib/rational/oint.mli:
