lib/rational/rat.ml: Format Oint Printf Stdlib String
