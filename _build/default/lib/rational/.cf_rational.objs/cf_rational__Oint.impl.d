lib/rational/oint.ml: Stdlib
