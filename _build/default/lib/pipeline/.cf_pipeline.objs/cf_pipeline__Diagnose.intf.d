lib/pipeline/diagnose.mli: Cf_loop Format
