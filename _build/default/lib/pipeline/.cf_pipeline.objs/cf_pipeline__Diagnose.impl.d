lib/pipeline/diagnose.ml: Array Cf_linalg Cf_loop Expr Format List Nest Printf Stmt
