lib/pipeline/pipeline.mli: Cf_core Cf_dep Cf_exec Cf_linalg Cf_loop Cf_machine Cf_transform Format Iter_partition Strategy
