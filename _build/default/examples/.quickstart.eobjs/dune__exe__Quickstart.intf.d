examples/quickstart.mli:
