examples/matmul.ml: Cf_core Cf_dep Cf_exec Cf_linalg Cf_loop Cf_report Format List Matmul Parexec Printf
