examples/advisor_demo.ml: Advisor Cf_exec Cf_linalg Cf_loop Format List Matmul Printf
