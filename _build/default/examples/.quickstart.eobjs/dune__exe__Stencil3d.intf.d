examples/stencil3d.mli:
