examples/workload_survey.ml: Cf_baseline Cf_core Cf_workloads Format List Printf Workloads
