examples/stencil3d.ml: Cf_core Cf_exec Cf_linalg Cf_loop Cf_pipeline Cf_report Cf_transform Format
