examples/duplicate_data.mli:
