examples/matmul.mli:
