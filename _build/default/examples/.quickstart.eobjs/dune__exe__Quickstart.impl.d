examples/quickstart.ml: Cf_core Cf_exec Cf_loop Cf_pipeline Cf_report Format
