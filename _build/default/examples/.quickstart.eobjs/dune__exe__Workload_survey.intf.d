examples/workload_survey.mli:
