examples/redundant.ml: Cf_core Cf_dep Cf_exec Cf_linalg Cf_loop Cf_pipeline Cf_report Exact Format Kind List
