examples/cgen_demo.mli:
