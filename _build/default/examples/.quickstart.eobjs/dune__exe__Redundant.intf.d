examples/redundant.mli:
