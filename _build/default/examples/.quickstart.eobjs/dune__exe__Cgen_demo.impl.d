examples/cgen_demo.ml: Cf_cgen Cf_loop Cf_pipeline Format List
