(* Loop L4: a 3-nested stencil whose dependences all point along
   (1,-1,1).  The partitioning space has dimension 1, so the transformed
   loop exposes two forall dimensions - more parallelism than any single
   hyperplane family could give.  Reproduces loop L4' and Fig. 10.

   Run with: dune exec examples/stencil3d.exe *)

let () =
  let nest =
    Cf_loop.Parse.nest
      {|
for i1 = 1 to 4
  for i2 = 1 to 4
    for i3 = 1 to 4
      A[i1, i2, i3] := A[i1-1, i2+1, i3-1] + B[i1, i2, i3];
    end
  end
end
|}
  in
  Format.printf "@[<v>Loop L4:@,%a@]@." Cf_loop.Nest.pp nest;

  (* The paper picks the Ker(Psi) basis {(1,1,0), (-1,0,1)}; passing it
     reproduces loop L4' verbatim (i1' = i1+i2, i2' = -i1+i3). *)
  let plan =
    Cf_pipeline.Pipeline.plan ~strategy:Cf_core.Strategy.Nonduplicate
      ~basis:[ [| 1; 1; 0 |]; [| -1; 0; 1 |] ]
      nest
  in
  Format.printf "partitioning space: %a@." Cf_linalg.Subspace.pp
    plan.Cf_pipeline.Pipeline.space;
  Format.printf "@[<v>Transformed loop L4':@,%a@]@." Cf_transform.Parloop.pp
    plan.Cf_pipeline.Pipeline.parloop;

  (* Fig. 10: per-block workloads and the 2x2 cyclic assignment. *)
  print_string
    (Cf_report.Figures.assignment_grid plan.Cf_pipeline.Pipeline.parloop
       ~grid:[| 2; 2 |]);

  (* The mod-assignment balances perfectly: 16 iterations per processor. *)
  let counts =
    Cf_exec.Assign.parloop_counts plan.Cf_pipeline.Pipeline.parloop
      ~grid:[| 2; 2 |]
  in
  assert (counts = [| 16; 16; 16; 16 |]);

  (* And the full run remains communication-free and correct. *)
  let sim = Cf_pipeline.Pipeline.simulate ~procs:4 plan in
  if Cf_exec.Parexec.ok sim.Cf_pipeline.Pipeline.report then
    print_endline "OK: L4' executes communication-free on 4 processors."
  else (print_endline "FAILED"; exit 1)
