(* The paper's matrix-multiplication study (Section IV): the
   nonduplicate strategy forces sequential execution, duplicating B
   (loop L5') or both A and B (loop L5'') buys parallelism at the price
   of replicated initial data.  Regenerates Tables I and II from the
   calibrated cost model and validates small instances by real simulated
   execution.

   Run with: dune exec examples/matmul.exe *)

open Cf_exec

let () =
  let nest = Matmul.nest ~m:4 in
  Format.printf "@[<v>Loop L5 (M = 4):@,%a@]@." Cf_loop.Nest.pp nest;

  (* Why L5 is sequential without duplication. *)
  List.iter
    (fun a ->
      Format.printf "  Psi_%s = %a (%a)@." a Cf_linalg.Subspace.pp
        (Cf_core.Refspace.reference_space nest a)
        Cf_dep.Analysis.pp_duplicability
        (Cf_dep.Analysis.duplicability nest a))
    (Cf_loop.Nest.arrays nest);
  let psi = Cf_core.Strategy.partitioning_space Cf_core.Strategy.Nonduplicate nest in
  Format.printf "nonduplicate partitioning space: %a -> sequential@."
    Cf_linalg.Subspace.pp psi;
  let psi_dup =
    Cf_core.Strategy.partitioning_space Cf_core.Strategy.Duplicate nest
  in
  Format.printf "duplicate partitioning space: %a -> %d parallel dims@.@."
    Cf_linalg.Subspace.pp psi_dup
    (Cf_core.Strategy.parallelism_degree psi_dup);

  (* Small-instance validation: real distribution, execution, checks. *)
  print_endline "simulated runs (m = 8):";
  List.iter
    (fun (variant, p) ->
      let r = Matmul.simulate variant ~m:8 ~p in
      Printf.printf "  %-4s p=%-2d ok=%b makespan=%.6fs (dist %.6fs)\n"
        (Matmul.variant_name variant)
        p (Parexec.ok r.Matmul.report) r.Matmul.makespan
        r.Matmul.distribution_time)
    [ (Matmul.Sequential, 1); (Matmul.Dup_b, 4); (Matmul.Dup_ab, 4);
      (Matmul.Dup_b, 16); (Matmul.Dup_ab, 16) ];
  print_newline ();

  (* The paper's evaluation tables from the calibrated cost model. *)
  print_string (Cf_report.Tables.table1 ());
  print_newline ();
  print_string (Cf_report.Tables.table2 ());
  Printf.printf "\nmax relative error vs the published Table I: %.1f%%\n"
    (100. *. Cf_report.Tables.max_relative_error ())
