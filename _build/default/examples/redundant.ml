(* Loop L3 (Sec. III.C): without redundancy elimination every strategy is
   sequential; eliminating the writes of S1 that are overwritten before
   any live read leaves only the flow dependence (1,0), and the
   minimal-duplicate strategy splits the loop into 4 parallel column
   blocks (Figs. 8-9).

   Run with: dune exec examples/redundant.exe *)

open Cf_dep

let () =
  let nest =
    Cf_loop.Parse.nest
      {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[i, j] := A[i-1, j-1] * 3;
    S2: A[i, j-1] := A[i+1, j-2] / 7;
  end
end
|}
  in
  Format.printf "@[<v>Loop L3:@,%a@]@." Cf_loop.Nest.pp nest;

  (* The data reference graph (Fig. 7). *)
  print_string (Cf_report.Figures.reference_graph nest "A");
  print_newline ();

  (* Exact analysis: find the redundant computations. *)
  let exact = Exact.analyze nest in
  Format.printf "%a@." Exact.pp_summary exact;
  Format.printf "N(S1) = {%a} - only the last column of S1 survives@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Cf_linalg.Vec.pp_int)
    (Exact.n_set exact 0);
  Format.printf "useful dependence vectors: {%a}; flow only: {%a}@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Cf_linalg.Vec.pp_int)
    (Exact.useful_vectors exact "A")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Cf_linalg.Vec.pp_int)
    (Exact.useful_vectors ~kinds:[ Kind.Flow ] exact "A");

  (* Strategy ladder: duplicate alone does not help; elimination does. *)
  List.iter
    (fun strategy ->
      let psi =
        Cf_core.Strategy.partitioning_space ~exact strategy nest
      in
      Format.printf "  %-18s Psi = %-24s parallelism %d@."
        (Cf_core.Strategy.to_string strategy)
        (Format.asprintf "%a" Cf_linalg.Subspace.pp psi)
        (Cf_core.Strategy.parallelism_degree psi))
    Cf_core.Strategy.all;

  (* The minimal-duplicate plan: 4 column blocks (Fig. 9), verified. *)
  let plan =
    Cf_pipeline.Pipeline.plan ~strategy:Cf_core.Strategy.Min_duplicate nest
  in
  print_string
    (Cf_report.Figures.iteration_partition plan.Cf_pipeline.Pipeline.partition);
  let sim = Cf_pipeline.Pipeline.simulate ~procs:4 plan in
  if Cf_exec.Parexec.ok sim.Cf_pipeline.Pipeline.report then
    print_endline
      "OK: after eliminating redundant computations, L3 runs on 4 \
       processors without communication."
  else (print_endline "FAILED"; exit 1)
