(* Survey of scientific kernels (the workloads the paper's UPPER project
   evaluates): for each kernel, all four strategies and the Ramanujam &
   Sadayappan hyperplane baseline, with every plan verified on the
   concrete iteration space.

   Run with: dune exec examples/workload_survey.exe *)

open Cf_workloads

let () =
  Printf.printf "%-12s %-18s %5s %9s %7s %9s\n" "kernel" "strategy" "dim"
    "parallel" "blocks" "verified";
  List.iter
    (fun kernel ->
      let rows = Workloads.study kernel in
      List.iter
        (fun (r : Workloads.study_row) ->
          Printf.printf "%-12s %-18s %5d %9d %7d %9b\n" r.Workloads.kernel
            (Cf_core.Strategy.to_string r.Workloads.strategy)
            r.Workloads.dim_psi r.Workloads.parallel_dims r.Workloads.blocks
            r.Workloads.verified)
        rows;
      (* Check the kernel's documented expectation. *)
      let e = kernel.Workloads.expected in
      let achieved =
        List.exists
          (fun (r : Workloads.study_row) ->
            r.Workloads.strategy = e.Workloads.strategy
            && r.Workloads.parallel_dims = e.Workloads.parallel_dims
            && r.Workloads.verified)
          rows
      in
      if not achieved then begin
        Printf.printf "UNEXPECTED RESULT for %s\n" kernel.Workloads.name;
        exit 1
      end;
      Format.printf "%a@.@." Cf_baseline.Hyperplane.pp_comparison
        (Workloads.baseline_comparison kernel))
    Workloads.all;
  print_endline "OK: all kernels match their documented expectations."
