(* From analysis to compilable code: plan loop L4 with the paper's
   basis, emit the SPMD C program for a 2x2 processor grid, and show
   that the C checksums the test suite verifies are reproducible from
   the OCaml side.

   Run with: dune exec examples/cgen_demo.exe *)

let () =
  let nest =
    Cf_loop.Parse.nest
      {|
for i1 = 1 to 4
  for i2 = 1 to 4
    for i3 = 1 to 4
      A[i1, i2, i3] := A[i1-1, i2+1, i3-1] + B[i1, i2, i3];
    end
  end
end
|}
  in
  let plan =
    Cf_pipeline.Pipeline.plan ~basis:[ [| 1; 1; 0 |]; [| -1; 0; 1 |] ] nest
  in
  (match Cf_cgen.Cgen.supports plan.Cf_pipeline.Pipeline.parloop with
   | Ok () -> ()
   | Error msg ->
     Format.printf "cannot generate C: %s@." msg;
     exit 1);
  let c_src =
    Cf_cgen.Cgen.emit ~grid:[| 2; 2 |] plan.Cf_pipeline.Pipeline.parloop
  in
  print_string c_src;
  Format.printf
    "@./* expected checksums (from the OCaml reference interpreter):@.";
  List.iter
    (fun (a, cs) -> Format.printf "   %s %d@." a cs)
    (Cf_cgen.Cgen.expected_checksums plan.Cf_pipeline.Pipeline.parloop);
  Format.printf "   compile the code above and compare: cc -O1 l4.c && ./a.out */@."
