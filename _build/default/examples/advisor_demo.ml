(* The duplication question of Section IV, answered mechanically: for
   matrix multiplication, should we replicate B (loop L5'), both A and B
   (loop L5''), or nothing?  The advisor sweeps every subset of arrays,
   prices each candidate under the paper's cost model and grid
   assignment, and ranks them - revealing the crossover the paper's
   Table I hints at.

   Run with: dune exec examples/advisor_demo.exe *)

open Cf_exec

let () =
  print_endline "Matrix multiplication, 16 processors.";
  print_endline "Ranked duplication choices per problem size:\n";
  List.iter
    (fun m ->
      Printf.printf "M = %d:\n" m;
      List.iteri
        (fun k c ->
          if k < 4 then
            Format.printf "  %d. %a@." (k + 1) Advisor.pp_candidate c)
        (Advisor.candidates ~procs:16 (Matmul.nest ~m));
      print_newline ())
    [ 4; 8; 12; 16 ];

  (* The winner's partitioning space coincides with the hand-derived
     L5'/L5'' constructions of Section IV. *)
  let best16 = Advisor.best ~procs:16 (Matmul.nest ~m:16) in
  let psi'' = Matmul.partitioning_space Matmul.Dup_ab ~m:16 in
  if Cf_linalg.Subspace.equal best16.Advisor.space psi'' then
    print_endline
      "At M = 16 the advisor picks {A, B} - exactly the paper's loop L5''."
  else begin
    Format.printf "unexpected winner: %a@." Advisor.pp_candidate best16;
    exit 1
  end;

  (* On a loop where duplication buys nothing (the paper's L1), the
     advisor recommends no replication at all. *)
  let l1 =
    Cf_loop.Parse.nest
      {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[2*i, j] := C[i, j] * 7;
    S2: B[j, i+1] := A[2*i-2, j-1] + C[i-1, j-1];
  end
end
|}
  in
  let best = Advisor.best ~procs:4 l1 in
  if best.Advisor.duplicated = [] then
    print_endline "On loop L1 it recommends duplicating nothing."
  else begin
    Format.printf "unexpected: %a@." Advisor.pp_candidate best;
    exit 1
  end
