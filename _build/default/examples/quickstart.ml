(* Quickstart: take the paper's first example (loop L1), derive its
   communication-free allocation, look at the partition, transform the
   loop, and run it on a simulated 4-node multicomputer.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Write the loop in the DSL (or build it with Cf_loop directly). *)
  let nest =
    Cf_loop.Parse.nest
      {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[2*i, j] := C[i, j] * 7;
    S2: B[j, i+1] := A[2*i-2, j-1] + C[i-1, j-1];
  end
end
|}
  in
  Format.printf "@[<v>Input nest:@,%a@]@." Cf_loop.Nest.pp nest;

  (* 2. Plan: reference spaces -> partitioning space -> partition ->
     transformed forall nest.  Nonduplicate keeps one copy per array
     element (Theorem 1). *)
  let plan =
    Cf_pipeline.Pipeline.plan ~strategy:Cf_core.Strategy.Nonduplicate nest
  in
  Format.printf "%a@." Cf_pipeline.Pipeline.describe plan;

  (* 3. The partition in pictures: 7 diagonal blocks, exactly Fig. 3. *)
  print_string
    (Cf_report.Figures.iteration_partition plan.Cf_pipeline.Pipeline.partition);
  print_string
    (Cf_report.Figures.data_partition nest plan.Cf_pipeline.Pipeline.partition
       "A");

  (* 4. Execute on a simulated machine.  Every array element access is
     checked against the owning processor's local memory, and the final
     values are compared with a sequential run. *)
  let sim = Cf_pipeline.Pipeline.simulate ~procs:4 plan in
  Format.printf "@[<v>%a@]@." Cf_exec.Parexec.pp_report
    sim.Cf_pipeline.Pipeline.report;
  Format.printf "load balance: %a@." Cf_exec.Balance.pp
    sim.Cf_pipeline.Pipeline.balance;
  Format.printf "simulated makespan: %.6f s@." sim.Cf_pipeline.Pipeline.makespan;
  if
    Cf_exec.Parexec.ok sim.Cf_pipeline.Pipeline.report
    && Cf_pipeline.Pipeline.verified plan
  then print_endline "OK: communication-free and correct."
  else (print_endline "FAILED"; exit 1)
