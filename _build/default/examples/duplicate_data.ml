(* Loop L2 (Sec. III.B): the nonduplicate strategy is stuck - the
   reference space of A spans the whole plane - but both arrays are
   fully duplicable (no flow dependences), so replicating data lets
   every iteration run on its own processor (Figs. 4-5).

   Run with: dune exec examples/duplicate_data.exe *)

let () =
  let nest =
    Cf_loop.Parse.nest
      {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[i+j, i+j] := B[2*i, j] * A[i+j-1, i+j];
    S2: A[i+j-1, i+j-1] := B[2*i-1, j-1] / 3;
  end
end
|}
  in
  Format.printf "@[<v>Loop L2:@,%a@]@." Cf_loop.Nest.pp nest;

  (* Definition 5: both arrays carry no flow dependence. *)
  List.iter
    (fun a ->
      Format.printf "  %s: %a@." a Cf_dep.Analysis.pp_duplicability
        (Cf_dep.Analysis.duplicability nest a))
    (Cf_loop.Nest.arrays nest);

  (* Theorem 1 vs Theorem 2. *)
  let nondup =
    Cf_pipeline.Pipeline.plan ~strategy:Cf_core.Strategy.Nonduplicate nest
  in
  let dup =
    Cf_pipeline.Pipeline.plan ~strategy:Cf_core.Strategy.Duplicate nest
  in
  Format.printf "nonduplicate: Psi = %a -> %d block(s)@." Cf_linalg.Subspace.pp
    nondup.Cf_pipeline.Pipeline.space
    (Cf_pipeline.Pipeline.block_count nondup);
  Format.printf "duplicate:    Psi = %a -> %d singleton blocks@."
    Cf_linalg.Subspace.pp dup.Cf_pipeline.Pipeline.space
    (Cf_pipeline.Pipeline.block_count dup);

  (* How much data gets replicated (Fig. 4). *)
  let dp =
    Cf_core.Data_partition.make nest dup.Cf_pipeline.Pipeline.partition "A"
  in
  Format.printf
    "array A: %d distinct elements touched, %d stored copies after \
     replication@."
    (List.length (Cf_core.Data_partition.elements dp))
    (Cf_core.Data_partition.total_copy_count dp);
  print_string
    (Cf_report.Figures.data_partition nest dup.Cf_pipeline.Pipeline.partition
       "A");

  (* All 16 iterations in parallel on 8 processors, 2 each. *)
  let sim = Cf_pipeline.Pipeline.simulate ~procs:8 dup in
  Format.printf "balance on 8 processors: %a@." Cf_exec.Balance.pp
    sim.Cf_pipeline.Pipeline.balance;
  if Cf_exec.Parexec.ok sim.Cf_pipeline.Pipeline.report then
    print_endline "OK: duplication turned a sequential loop fully parallel."
  else (print_endline "FAILED"; exit 1)
