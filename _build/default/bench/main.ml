(* Regenerates every table and figure of the paper's evaluation and then
   micro-benchmarks each analysis pipeline (one Bechamel test per
   table/figure).  Output order follows DESIGN.md's per-experiment
   index E1..E10. *)

open Bechamel
open Toolkit
open Cf_loop
open Cf_core
open Cf_report

let section title =
  Printf.printf "\n================ %s ================\n%!" title

let l1 =
  Parse.nest
    {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[2*i, j] := C[i, j] * 7;
    S2: B[j, i+1] := A[2*i-2, j-1] + C[i-1, j-1];
  end
end
|}

let l2 =
  Parse.nest
    {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[i+j, i+j] := B[2*i, j] * A[i+j-1, i+j];
    S2: A[i+j-1, i+j-1] := B[2*i-1, j-1] / 3;
  end
end
|}

let l3 =
  Parse.nest
    {|
for i = 1 to 4
  for j = 1 to 4
    S1: A[i, j] := A[i-1, j-1] * 3;
    S2: A[i, j-1] := A[i+1, j-2] / 7;
  end
end
|}

let l4 =
  Parse.nest
    {|
for i1 = 1 to 4
  for i2 = 1 to 4
    for i3 = 1 to 4
      A[i1, i2, i3] := A[i1-1, i2+1, i3-1] + B[i1, i2, i3];
    end
  end
end
|}

let l4_parloop () =
  let psi = Strategy.partitioning_space Strategy.Nonduplicate l4 in
  Cf_transform.Transformer.transform ~basis:[ [| 1; 1; 0 |]; [| -1; 0; 1 |] ]
    l4 psi

let print_figures () =
  section "E1 / Fig. 1 - data spaces and data-referenced vectors (L1)";
  List.iter (fun a -> print_string (Figures.data_space l1 a)) [ "A"; "B"; "C" ];
  let psi1 = Strategy.partitioning_space Strategy.Nonduplicate l1 in
  let p1 = Iter_partition.make l1 psi1 in
  section "E2 / Fig. 2 - data partitions of L1";
  List.iter (fun a -> print_string (Figures.data_partition l1 p1 a))
    [ "A"; "B"; "C" ];
  section "E3 / Fig. 3 - iteration partition of L1";
  print_string (Figures.iteration_partition p1);
  section "E4 / Figs. 4-5 - duplicate-data partition of L2";
  let p2 = Iter_partition.make l2 (Cf_linalg.Subspace.zero 2) in
  List.iter (fun a -> print_string (Figures.data_partition l2 p2 a)) [ "A"; "B" ];
  print_string (Figures.iteration_partition p2);
  section "E5 / Figs. 6-7 - data reference graph of L3";
  print_string (Figures.reference_graph l3 "A");
  print_newline ();
  section "E6 / Figs. 8-9 - L3 after redundancy elimination (Thm 4)";
  let exact3 = Cf_dep.Exact.analyze l3 in
  Format.printf "%a@." Cf_dep.Exact.pp_summary exact3;
  Format.printf "N(S1) = {%a}@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Cf_linalg.Vec.pp_int)
    (Cf_dep.Exact.n_set exact3 0);
  let psi3 =
    Strategy.partitioning_space ~exact:exact3 Strategy.Min_duplicate l3
  in
  let p3 = Iter_partition.make l3 psi3 in
  print_string (Figures.data_partition l3 p3 "A");
  print_string (Figures.iteration_partition p3);
  section "E7 / Fig. 10 - transformed loop L4' and processor assignment";
  let pl = l4_parloop () in
  Format.printf "%a@." Cf_transform.Parloop.pp pl;
  print_string (Figures.assignment_grid pl ~grid:[| 2; 2 |])

let print_tables () =
  section "E8 / Table I - execution time of L5, L5', L5''";
  print_string (Tables.table1 ());
  Printf.printf "max relative error vs paper: %.1f%%\n"
    (100. *. Tables.max_relative_error ());
  section "E9 / Table II - speedup of L5' and L5''";
  print_string (Tables.table2 ());
  section "E8b - simulator validation (small instances, real execution)";
  List.iter
    (fun (variant, p) ->
      let r = Cf_exec.Matmul.simulate variant ~m:8 ~p in
      Printf.printf
        "%-4s p=%-2d m=8: communication-free=%b correct=%b makespan=%.6fs (dist %.6fs)\n"
        (Cf_exec.Matmul.variant_name variant)
        p
        (r.Cf_exec.Matmul.report.Cf_exec.Parexec.remote_access = None)
        (Cf_exec.Parexec.ok r.Cf_exec.Matmul.report)
        r.Cf_exec.Matmul.makespan r.Cf_exec.Matmul.distribution_time)
    [ (Cf_exec.Matmul.Sequential, 1); (Cf_exec.Matmul.Dup_b, 4);
      (Cf_exec.Matmul.Dup_ab, 4); (Cf_exec.Matmul.Dup_b, 16);
      (Cf_exec.Matmul.Dup_ab, 16) ]

let print_ablation () =
  section "E10 - ablation: strategy vs parallelism across the paper's loops";
  Printf.printf "%-6s %-18s %-6s %-8s %-10s %s\n" "loop" "strategy" "dim"
    "blocks" "max-block" "comm-free";
  List.iter
    (fun (name, nest) ->
      List.iter
        (fun strategy ->
          let exact =
            if Strategy.uses_exact_analysis strategy then
              Some (Cf_dep.Exact.analyze nest)
            else None
          in
          let psi = Strategy.partitioning_space ?exact strategy nest in
          let p = Iter_partition.make nest psi in
          let free = Verify.communication_free ?exact strategy p in
          Printf.printf "%-6s %-18s %-6d %-8d %-10d %b\n" name
            (Strategy.to_string strategy)
            (Cf_linalg.Subspace.dim psi)
            (Iter_partition.block_count p)
            (Iter_partition.max_block_size p)
            free)
        Strategy.all)
    [ ("L1", l1); ("L2", l2); ("L3", l3); ("L4", l4);
      ("L5(8)", Cf_exec.Matmul.nest ~m:8) ]

let print_commcost () =
  section
    "E11 - communication cost: naive outer-slab partition vs communication-free";
  Printf.printf "%-12s %-22s %12s %14s %14s\n" "loop" "partition" "flow pairs"
    "remote reads" "remote values";
  let row name nest =
    let exact = Cf_dep.Exact.analyze nest in
    let slab = Cf_exec.Commcost.outer_slab_partition nest in
    let nblocks = Iter_partition.block_count slab in
    let slab_cost =
      Cf_exec.Commcost.measure ~exact
        ~placement:(Cf_exec.Parexec.cyclic ~nprocs:nblocks)
        slab
    in
    Printf.printf "%-12s %-22s %12d %14d %14d\n" name "outer slabs"
      slab_cost.Cf_exec.Commcost.total_flow_pairs
      slab_cost.Cf_exec.Commcost.remote_reads
      slab_cost.Cf_exec.Commcost.remote_values;
    let psi = Strategy.partitioning_space ~exact Strategy.Duplicate nest in
    let free = Iter_partition.make nest psi in
    let free_cost =
      Cf_exec.Commcost.measure ~exact
        ~placement:
          (Cf_exec.Parexec.cyclic
             ~nprocs:(max 1 (Iter_partition.block_count free)))
        free
    in
    Printf.printf "%-12s %-22s %12d %14d %14d\n" name
      "comm-free (duplicate)" free_cost.Cf_exec.Commcost.total_flow_pairs
      free_cost.Cf_exec.Commcost.remote_reads
      free_cost.Cf_exec.Commcost.remote_values
  in
  row "L1" l1;
  row "L4" l4;
  List.iter
    (fun k ->
      row k.Cf_workloads.Workloads.name (k.Cf_workloads.Workloads.build ~size:6))
    [ Cf_workloads.Workloads.convolution; Cf_workloads.Workloads.dft;
      Cf_workloads.Workloads.sor ]

let print_advisor () =
  section "E12 - duplication advisor on L5 (which arrays to replicate)";
  List.iter
    (fun m ->
      Printf.printf "m=%d, p=16:\n" m;
      List.iteri
        (fun k c ->
          if k < 3 then
            Format.printf "  %d. %a@." (k + 1) Cf_exec.Advisor.pp_candidate c)
        (Cf_exec.Advisor.candidates ~procs:16 (Cf_exec.Matmul.nest ~m)))
    [ 6; 12; 16 ];
  print_endline
    "(crossover: replicating both inputs - the L5'' choice - wins once \
     compute amortizes the startup messages)"

let print_distribution () =
  section
    "E13 - full makespan (distribution + compute) across the workload kernels";
  Printf.printf "%-12s %6s %6s %14s %14s %10s\n" "kernel" "size" "p"
    "makespan (s)" "dist (s)" "balance";
  List.iter
    (fun k ->
      let nest = k.Cf_workloads.Workloads.build ~size:6 in
      List.iter
        (fun procs ->
          let plan =
            Cf_pipeline.Pipeline.plan ~strategy:Strategy.Duplicate nest
          in
          let sim =
            Cf_pipeline.Pipeline.simulate ~procs ~with_distribution:true plan
          in
          let machine = sim.Cf_pipeline.Pipeline.report.Cf_exec.Parexec.machine in
          Printf.printf "%-12s %6d %6d %14.6f %14.6f %10.3f\n"
            k.Cf_workloads.Workloads.name 6 procs
            sim.Cf_pipeline.Pipeline.makespan
            (Cf_machine.Machine.distribution_time machine)
            sim.Cf_pipeline.Pipeline.balance.Cf_exec.Balance.imbalance)
        [ 2; 4 ])
    [ Cf_workloads.Workloads.convolution; Cf_workloads.Workloads.dft;
      Cf_workloads.Workloads.stencil_2d; Cf_workloads.Workloads.rank1_update;
      Cf_workloads.Workloads.shifted_sum ]

(* One Bechamel test per experiment: each measures the full pipeline that
   regenerates the corresponding artifact. *)
let tests =
  let t name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"comfree"
    [
      t "fig1:data-space" (fun () -> Figures.data_space l1 "A");
      t "fig2:data-partition" (fun () ->
          let psi = Strategy.partitioning_space Strategy.Nonduplicate l1 in
          let p = Iter_partition.make l1 psi in
          Data_partition.make l1 p "A");
      t "fig3:iter-partition" (fun () ->
          let psi = Strategy.partitioning_space Strategy.Nonduplicate l1 in
          Iter_partition.make l1 psi);
      t "fig4_5:duplicate-partition" (fun () ->
          let psi = Strategy.partitioning_space Strategy.Duplicate l2 in
          Iter_partition.make l2 psi);
      t "fig6_7:reference-graph" (fun () -> Cf_dep.Graph.build l3 "A");
      t "fig8_9:redundancy-elimination" (fun () -> Cf_dep.Exact.analyze l3);
      t "fig10:transform-assign" (fun () ->
          let pl = l4_parloop () in
          Cf_exec.Assign.parloop_counts pl ~grid:[| 2; 2 |]);
      t "table1:cost-model-sweep" (fun () ->
          List.iter
            (fun (v, p) ->
              List.iter
                (fun m ->
                  ignore
                    (Cf_exec.Matmul.analytic_time Cf_machine.Cost.transputer v
                       ~m ~p))
                Tables.problem_sizes)
            Tables.rows);
      t "table2:simulated-matmul" (fun () ->
          Cf_exec.Matmul.simulate Cf_exec.Matmul.Dup_ab ~m:8 ~p:4);
      t "ablation:four-strategies-L3" (fun () ->
          List.map (fun s -> Strategy.partitioning_space s l3) Strategy.all);
      t "commcost:outer-slabs-L4" (fun () ->
          let slab = Cf_exec.Commcost.outer_slab_partition l4 in
          Cf_exec.Commcost.measure
            ~placement:(Cf_exec.Parexec.cyclic ~nprocs:4)
            slab);
      t "advisor:matmul-m6" (fun () ->
          Cf_exec.Advisor.candidates ~procs:16 (Cf_exec.Matmul.nest ~m:6));
      t "scalability:symbolic-analysis-m32" (fun () ->
          Strategy.partitioning_space Strategy.Duplicate
            (Cf_exec.Matmul.nest ~m:32));
      t "scalability:exact-analysis-m10" (fun () ->
          Cf_dep.Exact.analyze (Cf_exec.Matmul.nest ~m:10));
    ]

let run_benchmarks () =
  section "micro-benchmarks (Bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ x ] -> x
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "%-45s (no estimate)\n" name
      else if ns > 1e6 then
        Printf.printf "%-45s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-45s %10.1f ns/run\n" name ns)
    rows

let () =
  print_figures ();
  print_tables ();
  print_ablation ();
  print_commcost ();
  print_advisor ();
  print_distribution ();
  run_benchmarks ()
