(* cfalloc - communication-free data allocation driver.

   Subcommands: analyze, transform, simulate, figures, compare, advise,
   cgen, demo.
   Loop nests are read from DSL files (see examples/loops/). *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let strategy_conv =
  let parse s =
    match
      List.find_opt
        (fun st -> Cf_core.Strategy.to_string st = s)
        Cf_core.Strategy.all
    with
    | Some st -> Ok st
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown strategy %S (expected one of: %s)" s
              (String.concat ", "
                 (List.map Cf_core.Strategy.to_string Cf_core.Strategy.all))))
  in
  let print ppf s = Format.fprintf ppf "%s" (Cf_core.Strategy.to_string s) in
  Arg.conv (parse, print)

let basis_conv =
  (* "1,1,0;-1,0,1" -> [ [|1;1;0|]; [|-1;0;1|] ] *)
  let parse s =
    match
      String.split_on_char ';' s
      |> List.map (fun row ->
             String.split_on_char ',' row
             |> List.map (fun x ->
                    let x = String.trim x in
                    if x = "" then failwith "empty entry" else int_of_string x)
             |> Array.of_list)
    with
    | exception _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad basis %S: expected integer rows like \"1,1,0;-1,0,1\"" s))
    | [] | [ [||] ] ->
      Error (`Msg (Printf.sprintf "bad basis %S: no rows given" s))
    | first :: rest as rows ->
      let width = Array.length first in
      (match
         List.find_opt (fun r -> Array.length r <> width) rest
       with
      | Some bad ->
        Error
          (`Msg
             (Printf.sprintf
                "bad basis %S: ragged rows (row of length %d after a row of \
                 length %d)"
                s (Array.length bad) width))
      | None -> Ok rows)
  in
  let print ppf rows =
    Format.fprintf ppf "%s"
      (String.concat ";"
         (List.map
            (fun r ->
              String.concat ","
                (Array.to_list (Array.map string_of_int r)))
            rows))
  in
  Arg.conv (parse, print)

let file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"Loop-nest DSL file.")

let strategy_arg =
  Arg.(value
       & opt strategy_conv Cf_core.Strategy.Nonduplicate
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Partitioning strategy: nonduplicate, duplicate, \
                 min-nonduplicate or min-duplicate.")

let radius_arg =
  Arg.(value & opt (some int) None
       & info [ "radius" ] ~docv:"N"
           ~doc:"Babai search radius for dependence witnesses.")

let basis_arg =
  Arg.(value & opt (some basis_conv) None
       & info [ "basis" ] ~docv:"ROWS"
           ~doc:"Override the Ker(Psi) basis, e.g. \"1,1,0;-1,0,1\".")

let procs_arg =
  Arg.(value & opt int 4
       & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processors.")

let logs_arg = Logs_cli.level ()

let load file = Cf_loop.Parse.program_of_file file

(* Apply an action to every nest of the program, with a banner when the
   file holds more than one. *)
let each_nest file f =
  let nests = load file in
  let many = List.length nests > 1 in
  List.iteri
    (fun k nest ->
      if many then Format.printf "@.===== nest %d =====@." (k + 1);
      f nest)
    nests

let handle f =
  try f (); 0
  with
  | Cf_loop.Parse.Error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | Unix.Unix_error (e, fn, arg) ->
    Format.eprintf "error: %s: %s%s@." fn (Unix.error_message e)
      (if arg = "" then "" else " (" ^ arg ^ ")");
    1

(* analyze *)

let analyze_run level file strategy radius normalize =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          Format.printf "@[<v>input loop:@,%a@]@." Cf_loop.Nest.pp nest;
          let nest =
            if not normalize then nest
            else begin
              let r = Cf_normalize.Normalize.normalize nest in
              Format.printf "@[<v>%a@]@." Cf_normalize.Normalize.describe r;
              (match Cf_normalize.Normalize.check r with
              | Ok () ->
                if r.Cf_normalize.Normalize.steps <> [] then
                  Format.printf "equivalence witness verified: true@."
              | Error msg -> failwith ("normalization witness failed: " ^ msg));
              if r.Cf_normalize.Normalize.steps <> [] then
                Format.printf "@[<v>normalized loop:@,%a@]@." Cf_loop.Nest.pp
                  r.Cf_normalize.Normalize.normalized;
              r.Cf_normalize.Normalize.normalized
            end
          in
          let issues = Cf_pipeline.Diagnose.check nest in
          List.iter
            (fun i -> Format.printf "%a@." Cf_pipeline.Diagnose.pp_issue i)
            issues;
          if not (Cf_pipeline.Diagnose.usable issues) then
            Format.printf "analysis skipped: the nest violates the model@."
          else begin
            let plan =
              Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest
            in
            Format.printf "%a@." Cf_pipeline.Pipeline.describe plan;
            Format.printf "communication-free verified: %b@."
              (Cf_pipeline.Pipeline.verified plan);
            (* A rejected nest still gets a plan: report which theorem
               failed and what the communication-minimal tier chose. *)
            if Cf_pipeline.Pipeline.parallelism plan = 0 then begin
              let mc = Cf_mincomm.Mincomm.plan ?search_radius:radius nest in
              List.iter
                (fun i -> Format.printf "%a@." Cf_pipeline.Diagnose.pp_issue i)
                (Cf_pipeline.Diagnose.explain_fallback mc);
              Format.printf "@[<v>%a@]@." Cf_mincomm.Mincomm.describe mc
            end
          end))

let normalize_flag =
  Arg.(value & flag
       & info [ "normalize" ]
           ~doc:"Run the normalization front door first (fold, hoist, \
                 compress, shift), verify its equivalence witness, and \
                 analyze the normalized nest.")

let analyze_cmd =
  let doc = "Analyze a loop nest and print its communication-free plan." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const analyze_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ normalize_flag)

(* normalize *)

let normalize_run level file plan_after =
  setup_logs level;
  let failed = ref false in
  let code =
    handle (fun () ->
        each_nest file (fun nest ->
            Format.printf "@[<v>input loop:@,%a@]@." Cf_loop.Nest.pp nest;
            let r = Cf_normalize.Normalize.normalize nest in
            Format.printf "@[<v>%a@]@." Cf_normalize.Normalize.describe r;
            (match Cf_normalize.Normalize.check r with
            | Ok () -> Format.printf "equivalence witness verified: true@."
            | Error msg ->
              failed := true;
              Format.printf "equivalence witness FAILED: %s@." msg);
            if r.Cf_normalize.Normalize.steps <> [] then
              Format.printf "@[<v>normalized loop:@,%a@]@." Cf_loop.Nest.pp
                r.Cf_normalize.Normalize.normalized;
            if plan_after then
              match Cf_pipeline.Pipeline.plan_normalized nest with
              | Ok (_, planned) ->
                (match planned with
                | Cf_pipeline.Pipeline.Fallback (_, mc) ->
                  Format.printf "@[<v>%a@]@." Cf_mincomm.Mincomm.describe mc
                | Cf_pipeline.Pipeline.Exact plan ->
                  Format.printf "%a@." Cf_pipeline.Pipeline.describe plan)
              | Error (_, reason) ->
                Format.printf "no plan: %s@." reason))
  in
  if code = 0 && !failed then 1 else code

let normalize_cmd =
  let doc =
    "Normalize a loop nest (fold unrolled bodies, hoist non-uniform \
     reads, compress strided subscripts, rebase shifted bounds) and \
     machine-check the equivalence witness each transform emits: the \
     inverted steps must reconstruct the input, and both nests must \
     produce bit-for-bit identical memory on the sequential executor."
  in
  let plan_arg =
    Arg.(value & flag
         & info [ "plan" ]
             ~doc:"Also run the planner on the normalized nest \
                   (Pipeline.plan_normalized) and print the outcome.")
  in
  Cmd.v (Cmd.info "normalize" ~doc)
    Term.(const normalize_run $ logs_arg $ file_arg $ plan_arg)

(* transform *)

let transform_run level file strategy radius basis procs =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
      let plan =
        Cf_pipeline.Pipeline.plan ~strategy ?basis ?search_radius:radius nest
      in
      Format.printf "%a@." Cf_transform.Parloop.pp plan.Cf_pipeline.Pipeline.parloop;
      let pl = plan.Cf_pipeline.Pipeline.parloop in
      if pl.Cf_transform.Parloop.n_forall > 0 then begin
        let grid = Cf_exec.Assign.grid_for pl ~procs in
        Format.printf "@.processor-assigned form (grid %s):@."
          (String.concat "x"
             (Array.to_list (Array.map string_of_int grid)));
        Format.printf "%a@." (Cf_transform.Parloop.pp_assigned ~grid) pl
      end))

let transform_cmd =
  let doc = "Emit the transformed forall nest (and its assigned form)." in
  Cmd.v (Cmd.info "transform" ~doc)
    Term.(const transform_run $ logs_arg $ file_arg $ strategy_arg
          $ radius_arg $ basis_arg $ procs_arg)

(* simulate *)

(* Fault-injected simulation: plan as usual, then run the crash-tolerant
   indexed engine on a machine carrying the fault plan.  The recovery
   must reproduce the fault-free result bit for bit, which pp_report's
   "results: match sequential" line certifies. *)
(* Hand-parsed like the fault flags: a bad value is a usage error (exit
   2), not a planner failure. *)
let backend_flag v k =
  match v with
  | None -> k `Compiled
  | Some s -> (
    match Cf_exec.Compile.backend_of_string s with
    | Some b -> k b
    | None ->
      Format.eprintf
        "error: --backend expects 'interpreted' or 'compiled', got %S@." s;
      2)

let backend_arg =
  Arg.(value & opt (some string) None
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Statement-body engine: $(b,compiled) (closure-specialized \
                 kernels, the default) or $(b,interpreted) (per-iteration \
                 AST walk, the differential oracle).")

let comm_mode_flag v k =
  match v with
  | None -> k `Service
  | Some s -> (
    match Cf_machine.Machine.comm_mode_of_string s with
    | Some m -> k m
    | None ->
      Format.eprintf "error: --comm-mode expects one of: %s (got %S)@."
        (String.concat ", " Cf_machine.Machine.comm_mode_names)
        s;
      2)

let fault_simulate ~backend ~strategy ~radius ~procs ~spec ~checkpoint_every
    nest =
  let plan = Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest in
  let fplan = Cf_fault.Fault.make ~procs spec in
  let machine =
    Cf_machine.Machine.create ~faults:fplan
      (Cf_machine.Topology.linear procs)
      Cf_machine.Cost.transputer
  in
  let coset = Cf_core.Coset.make nest plan.Cf_pipeline.Pipeline.space in
  (* Distribution is charged so the host's messages actually traverse
     the faulty links (and a PE dead on arrival is unmasked by its first
     message, not first iteration). *)
  let report =
    Cf_exec.Parexec.execute_indexed ~backend
      ?exact:plan.Cf_pipeline.Pipeline.exact ~charge_distribution:true
      ~checkpoint_every ~machine
      ~placement:(Cf_exec.Parexec.cyclic ~nprocs:procs)
      ~strategy coset
  in
  Format.printf "%a@." Cf_fault.Fault.pp fplan;
  Format.printf "@[<v>%a@]@." Cf_exec.Parexec.pp_report report;
  Format.printf "link: %d retransmission(s) (%d dropped, %d corrupted)@."
    (Cf_machine.Machine.retries machine)
    (Cf_machine.Machine.dropped_messages machine)
    (Cf_machine.Machine.corrupted_messages machine);
  Format.printf "makespan: %.6fs@." (Cf_machine.Machine.makespan machine);
  Format.printf "recovered output identical: %b@."
    (Cf_exec.Parexec.ok report)

let simulate_run level file strategy radius procs backend comm_mode fault_seed
    kill_pe kill_after checkpoint_every =
  setup_logs level;
  backend_flag backend @@ fun backend ->
  comm_mode_flag comm_mode @@ fun comm_mode ->
  (* The fault flags are parsed by hand so a malformed value yields a
     clear diagnostic and exit code 2 (usage error), distinct from the
     planner-failure exit code 1. *)
  let int_flag name v k =
    match v with
    | None -> k None
    | Some s -> (
      match int_of_string_opt s with
      | Some n -> k (Some n)
      | None ->
        Format.eprintf "error: --%s expects an integer, got %S@." name s;
        2)
  in
  int_flag "fault-seed" fault_seed @@ fun seed ->
  int_flag "kill-pe" kill_pe @@ fun kill_pe ->
  int_flag "kill-after" kill_after @@ fun kill_after ->
  int_flag "checkpoint-every" checkpoint_every @@ fun checkpoint_every ->
  let checkpoint_every = Option.value checkpoint_every ~default:0 in
  if checkpoint_every < 0 then begin
    Format.eprintf "error: --checkpoint-every must be >= 0@.";
    2
  end
  else
  match (seed, kill_pe, kill_after) with
  | None, None, None ->
    handle (fun () ->
        each_nest file (fun nest ->
            let planned =
              Cf_pipeline.Pipeline.plan_serve ~strategy ?search_radius:radius
                ~nprocs:procs nest
            in
            (match Cf_pipeline.Pipeline.fallback_of planned with
            | None -> ()
            | Some mc ->
              Format.printf
                "theorems reject the nest; serving fallback %s (predicted \
                 %d message(s))@."
                mc.Cf_mincomm.Mincomm.choice.Cf_mincomm.Mincomm.origin
                mc.Cf_mincomm.Mincomm.estimate.Cf_mincomm.Mincomm.messages);
            let sim =
              Cf_pipeline.Pipeline.simulate_serve ~backend ~procs ~comm_mode
                ~checkpoint_every planned
            in
            Format.printf "@[<v>%a@]@." Cf_exec.Parexec.pp_report
              sim.Cf_pipeline.Pipeline.report;
            (match Cf_pipeline.Pipeline.fallback_of planned with
            | None -> ()
            | Some _ ->
              let m =
                sim.Cf_pipeline.Pipeline.report.Cf_exec.Parexec.machine
              in
              Format.printf
                "serviced: %d message(s) (%d read(s), %d write(s))@."
                (Cf_machine.Machine.serviced_messages m)
                (Cf_machine.Machine.serviced_reads m)
                (Cf_machine.Machine.serviced_writes m));
            Format.printf "balance: %a@." Cf_exec.Balance.pp
              sim.Cf_pipeline.Pipeline.balance;
            Format.printf "makespan: %.6fs@." sim.Cf_pipeline.Pipeline.makespan))
  | _ when kill_after <> None && kill_pe = None ->
    Format.eprintf "error: --kill-after requires --kill-pe@.";
    2
  | _ when (match kill_pe with Some pe -> pe < 0 || pe >= procs | None -> false)
    ->
    Format.eprintf "error: --kill-pe %d is outside the machine (0..%d)@."
      (Option.get kill_pe) (procs - 1);
    2
  | _ when (match kill_after with Some k -> k < 0 | None -> false) ->
    Format.eprintf "error: --kill-after must be >= 0@.";
    2
  | _ ->
    let spec =
      {
        Cf_fault.Fault.none with
        seed = Option.value seed ~default:0;
        kills =
          (match kill_pe with
          | Some pe -> [ (pe, Option.value kill_after ~default:0) ]
          | None -> []);
        (* A seed without explicit kills draws a random schedule; with
           --kill-pe alone the run is purely deterministic. *)
        crash_rate = (if seed = None then 0. else 0.25);
        crash_after_max = (if seed = None then 0 else 8);
        drop_rate = (if seed = None then 0. else 0.05);
        corrupt_rate = (if seed = None then 0. else 0.02);
      }
    in
    handle (fun () ->
        each_nest file
          (fault_simulate ~backend ~strategy ~radius ~procs ~spec
             ~checkpoint_every))

let simulate_cmd =
  let doc = "Execute the plan on the simulated multicomputer and verify it." in
  let fault_seed_arg =
    Arg.(value & opt (some string) None
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Enable seeded fault injection: random PE crashes and \
                   host-link drop/corruption drawn deterministically from \
                   $(docv); the run recovers and must reproduce the \
                   fault-free result.")
  in
  let kill_pe_arg =
    Arg.(value & opt (some string) None
         & info [ "kill-pe" ] ~docv:"PE"
             ~doc:"Deterministically crash processor $(docv) (combine with \
                   --kill-after).")
  in
  let kill_after_arg =
    Arg.(value & opt (some string) None
         & info [ "kill-after" ] ~docv:"K"
             ~doc:"Iterations the killed PE completes before dying (default \
                   0: dead during distribution); requires --kill-pe.")
  in
  let comm_mode_arg =
    Arg.(value & opt (some string) None
         & info [ "comm-mode" ] ~docv:"MODE"
             ~doc:"Remote-access policy for fallback \
                   (non-communication-free) plans: $(b,service) (default: \
                   each remote access is serviced as a charged message) or \
                   $(b,strict) (any remote access aborts the run).  Exact \
                   plans never communicate, so the flag is inert for them.")
  in
  let checkpoint_every_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Refresh the recovery checkpoint every $(docv) execution \
                   rounds (delta capture: only words written since the \
                   previous checkpoint), so a crash replays from the last \
                   checkpointed round.  Default 0: only the \
                   post-distribution snapshot.  On fallback plans the \
                   cadence is per $(docv) iterations instead.")
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const simulate_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ procs_arg $ backend_arg $ comm_mode_arg $ fault_seed_arg
          $ kill_pe_arg $ kill_after_arg $ checkpoint_every_arg)

(* trace *)

(* Shared with simulate: build the fault spec from the hand-parsed
   flags (None when no fault flag was given). *)
let fault_spec ~seed ~kill_pe ~kill_after =
  match (seed, kill_pe, kill_after) with
  | None, None, None -> None
  | _ ->
    Some
      {
        Cf_fault.Fault.none with
        seed = Option.value seed ~default:0;
        kills =
          (match kill_pe with
          | Some pe -> [ (pe, Option.value kill_after ~default:0) ]
          | None -> []);
        crash_rate = (if seed = None then 0. else 0.25);
        crash_after_max = (if seed = None then 0 else 8);
        drop_rate = (if seed = None then 0. else 0.05);
        corrupt_rate = (if seed = None then 0. else 0.02);
      }

let trace_run level file strategy radius procs fault_seed kill_pe kill_after
    out fmt capacity =
  setup_logs level;
  let int_flag name v k =
    match v with
    | None -> k None
    | Some s -> (
      match int_of_string_opt s with
      | Some n -> k (Some n)
      | None ->
        Format.eprintf "error: --%s expects an integer, got %S@." name s;
        2)
  in
  int_flag "fault-seed" fault_seed @@ fun seed ->
  int_flag "kill-pe" kill_pe @@ fun kill_pe ->
  int_flag "kill-after" kill_after @@ fun kill_after ->
  if capacity < 1 then begin
    Format.eprintf "error: --capacity must be >= 1@.";
    2
  end
  else if kill_after <> None && kill_pe = None then begin
    Format.eprintf "error: --kill-after requires --kill-pe@.";
    2
  end
  else begin
    (* The planner lane runs on wall clock rebased to the start of the
       run; machine lanes carry simulated seconds (see DESIGN.md). *)
    let t0 = Unix.gettimeofday () in
    let trace =
      Cf_obs.Trace.make
        ~clock:(fun () -> Unix.gettimeofday () -. t0)
        (Cf_obs.Trace.ring ~capacity)
    in
    handle (fun () ->
        each_nest file (fun nest ->
            let plan =
              Cf_pipeline.Pipeline.plan ~obs:trace ~strategy
                ?search_radius:radius nest
            in
            let faults =
              Option.map (Cf_fault.Fault.make ~procs)
                (fault_spec ~seed ~kill_pe ~kill_after)
            in
            let machine =
              Cf_machine.Machine.create ?faults ~obs:trace
                (Cf_machine.Topology.linear procs)
                Cf_machine.Cost.transputer
            in
            let coset =
              Cf_core.Coset.make nest plan.Cf_pipeline.Pipeline.space
            in
            let report =
              Cf_exec.Parexec.execute_indexed
                ?exact:plan.Cf_pipeline.Pipeline.exact
                ~charge_distribution:true ~machine
                ~placement:(Cf_exec.Parexec.cyclic ~nprocs:procs)
                ~strategy coset
            in
            Format.printf "@[<v>%a@]@." Cf_exec.Parexec.pp_report report;
            Format.printf "makespan: %.6fs@."
              (Cf_machine.Machine.makespan machine));
        let evs = Cf_obs.Trace.events trace in
        let data =
          match fmt with
          | "chrome" -> Cf_obs.Trace.to_chrome ~process_name:"cfalloc" evs
          | "jsonl" -> Cf_obs.Trace.to_jsonl evs
          | f -> invalid_arg (Printf.sprintf "unknown trace format %S" f)
        in
        let oc = open_out out in
        output_string oc data;
        close_out oc;
        Format.printf "wrote %s (%d event(s), %d dropped, %s format)@." out
          (List.length evs)
          (Cf_obs.Trace.dropped trace)
          fmt)
  end

let trace_cmd =
  let doc =
    "Execute the plan with the observability subsystem attached and \
     export the run as a per-PE timeline (Chrome trace_event JSON, \
     loadable in Perfetto / chrome://tracing, or JSONL)."
  in
  let fault_seed_arg =
    Arg.(value & opt (some string) None
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seeded fault injection, as in $(b,simulate): the crash \
                   and recovery-replay events appear on the timeline.")
  in
  let kill_pe_arg =
    Arg.(value & opt (some string) None
         & info [ "kill-pe" ] ~docv:"PE"
             ~doc:"Deterministically crash processor $(docv).")
  in
  let kill_after_arg =
    Arg.(value & opt (some string) None
         & info [ "kill-after" ] ~docv:"K"
             ~doc:"Iterations the killed PE completes before dying; \
                   requires --kill-pe.")
  in
  let out_arg =
    Arg.(value & opt string "trace.json"
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Output file (default trace.json).")
  in
  let fmt_arg =
    Arg.(value & opt (enum [ ("chrome", "chrome"); ("jsonl", "jsonl") ])
           "chrome"
         & info [ "trace-format" ] ~docv:"FORMAT"
             ~doc:"Export format: $(b,chrome) (default) or $(b,jsonl).")
  in
  let capacity_arg =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Ring-buffer capacity in events; the oldest events are \
                   dropped beyond it (default 65536).")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ procs_arg $ fault_seed_arg $ kill_pe_arg $ kill_after_arg
          $ out_arg $ fmt_arg $ capacity_arg)

(* trace-check *)

let trace_check_run level file =
  setup_logs level;
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Cf_obs.Trace.validate_chrome s with
  | Ok n ->
    Format.printf "valid Chrome trace: %d event(s)@." n;
    0
  | Error msg ->
    Format.eprintf "invalid trace: %s@." msg;
    1

let trace_check_cmd =
  let doc =
    "Validate a Chrome trace_event JSON file (as written by $(b,trace)): \
     well-formed JSON, required event fields, per-lane monotone \
     timestamps, balanced begin/end pairs."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Trace JSON file.")
  in
  Cmd.v (Cmd.info "trace-check" ~doc)
    Term.(const trace_check_run $ logs_arg $ file_arg)

(* bench-diff *)

(* Flatten a JSON document to (path, number) leaves; arrays of objects
   are keyed by their "workload"/"experiment"/"name" field when present
   so rows pair up even if reordered. *)
let rec json_leaves prefix j acc =
  match j with
  | Cf_obs.Json.Num x -> (prefix, x) :: acc
  | Cf_obs.Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) -> json_leaves (prefix ^ "." ^ k) v acc)
      acc fields
  | Cf_obs.Json.List items ->
    List.fold_left
      (fun (i, acc) item ->
        let key =
          match item with
          | Cf_obs.Json.Obj fields ->
            let tag name =
              match List.assoc_opt name fields with
              | Some (Cf_obs.Json.Str s) -> Some s
              | _ -> None
            in
            (match (tag "workload", tag "experiment", tag "name") with
            | Some s, _, _ | None, Some s, _ | None, None, Some s ->
              (* Disambiguate repeated workloads (size sweeps, kill
                 sweeps, checkpoint-cadence sweeps) so rows pair up
                 across files positionally independent. *)
              let disc name =
                match List.assoc_opt name fields with
                | Some (Cf_obs.Json.Num x) when Float.is_integer x ->
                  Printf.sprintf ",%s=%.0f" name x
                | Some (Cf_obs.Json.Str v) -> Printf.sprintf ",%s=%s" name v
                | _ -> ""
              in
              s ^ disc "size" ^ disc "kills" ^ disc "checkpoint_every"
              ^ disc "mode"
            | None, None, None -> string_of_int i)
          | _ -> string_of_int i
        in
        (i + 1, json_leaves (prefix ^ "[" ^ key ^ "]") item acc))
      (0, acc) items
    |> snd
  | _ -> acc

let bench_diff_run level baseline current warn_pct =
  setup_logs level;
  let read path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Cf_obs.Json.parse s with
    | Ok j -> Ok j
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
  in
  match (read baseline, read current) with
  | Error e, _ | _, Error e ->
    Format.eprintf "error: %s@." e;
    1
  | Ok base, Ok cur ->
    let base_leaves = json_leaves "" base [] in
    let cur_leaves = json_leaves "" cur [] in
    let warnings = ref 0 and compared = ref 0 in
    List.iter
      (fun (path, b) ->
        match List.assoc_opt path cur_leaves with
        | None -> ()
        | Some c ->
          incr compared;
          (* Tiny absolute values are all noise; only flag changes on
             metrics of measurable magnitude. *)
          if Float.abs b > 1e-9 then begin
            let pct = 100. *. (c -. b) /. Float.abs b in
            if Float.abs pct > warn_pct then begin
              incr warnings;
              Format.printf "WARN %s: %g -> %g (%+.1f%%)@." path b c pct
            end
          end)
      base_leaves;
    Format.printf "bench-diff: %d metric(s) compared, %d over the %.0f%% \
                   threshold (advisory only)@."
      !compared !warnings warn_pct;
    0

let bench_diff_cmd =
  let doc =
    "Compare a benchmark JSON report against a committed baseline and \
     warn (never fail) on metrics that moved more than the threshold."
  in
  let baseline_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASELINE" ~doc:"Committed baseline JSON file.")
  in
  let current_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CURRENT" ~doc:"Freshly produced JSON file.")
  in
  let warn_arg =
    Arg.(value & opt float 20.
         & info [ "warn-pct" ] ~docv:"PCT"
             ~doc:"Relative-change threshold in percent (default 20).")
  in
  Cmd.v (Cmd.info "bench-diff" ~doc)
    Term.(const bench_diff_run $ logs_arg $ baseline_arg $ current_arg
          $ warn_arg)

(* figures *)

let figures_run level file strategy radius svg_dir =
  setup_logs level;
  handle (fun () ->
      let nest_index = ref 0 in
      each_nest file (fun nest ->
      incr nest_index;
      let plan = Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest in
      let partition = plan.Cf_pipeline.Pipeline.partition in
      List.iter
        (fun a ->
          print_string (Cf_report.Figures.data_space nest a);
          print_string (Cf_report.Figures.data_partition nest partition a);
          print_string (Cf_report.Figures.reference_graph nest a);
          print_newline ())
        (Cf_loop.Nest.arrays nest);
      print_string (Cf_report.Figures.iteration_partition partition);
      match svg_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let save name contents =
          let path =
            Filename.concat dir
              (Printf.sprintf "nest%d-%s.svg" !nest_index name)
          in
          let oc = open_out path in
          output_string oc contents;
          close_out oc;
          Format.printf "wrote %s@." path
        in
        (try save "iterations" (Cf_report.Svg.iteration_partition partition)
         with Invalid_argument _ -> ());
        List.iter
          (fun a ->
            try save ("data-" ^ a) (Cf_report.Svg.data_partition nest partition a)
            with Invalid_argument _ -> ())
          (Cf_loop.Nest.arrays nest)))

let figures_cmd =
  let doc = "Render data/iteration partitions and reference graphs." in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"DIR"
             ~doc:"Also write SVG renderings of the 2-D figures to $(docv).")
  in
  Cmd.v (Cmd.info "figures" ~doc)
    Term.(const figures_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ svg_arg)

(* compare *)

let compare_run level file =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
      let exact = Cf_dep.Exact.analyze nest in
      Format.printf "%-18s %-5s %-10s %-8s@." "strategy" "dim" "parallel"
        "blocks";
      List.iter
        (fun strategy ->
          let psi =
            Cf_core.Strategy.partitioning_space ~exact strategy nest
          in
          let p = Cf_core.Iter_partition.make nest psi in
          Format.printf "%-18s %-5d %-10d %-8d@."
            (Cf_core.Strategy.to_string strategy)
            (Cf_linalg.Subspace.dim psi)
            (Cf_core.Strategy.parallelism_degree psi)
            (Cf_core.Iter_partition.block_count p))
        Cf_core.Strategy.all;
      Format.printf "%a@." Cf_baseline.Hyperplane.pp_comparison
        (Cf_baseline.Hyperplane.compare_on ~name:"input" nest)))

let compare_cmd =
  let doc =
    "Compare the four strategies and the R&S hyperplane baseline."
  in
  Cmd.v (Cmd.info "compare" ~doc) Term.(const compare_run $ logs_arg $ file_arg)

(* advise *)

let advise_run level file procs =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          Format.printf
            "duplication candidates for p = %d (best first):@." procs;
          List.iteri
            (fun k c ->
              Format.printf "  %d. %a@." (k + 1) Cf_exec.Advisor.pp_candidate c)
            (Cf_exec.Advisor.candidates ~procs nest)))

let advise_cmd =
  let doc =
    "Rank array-duplication choices by estimated execution time \
     (Section IV's which-array-to-replicate question)."
  in
  Cmd.v (Cmd.info "advise" ~doc)
    Term.(const advise_run $ logs_arg $ file_arg $ procs_arg)

(* cgen *)

let cgen_run level file strategy radius basis procs use_grid openmp =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          let plan =
            Cf_pipeline.Pipeline.plan ~strategy ?basis ?search_radius:radius
              nest
          in
          let pl = plan.Cf_pipeline.Pipeline.parloop in
          let grid =
            if use_grid && pl.Cf_transform.Parloop.n_forall > 0 then
              Some (Cf_exec.Assign.grid_for pl ~procs)
            else None
          in
          print_string (Cf_cgen.Cgen.emit ?grid ~openmp pl)))

let cgen_cmd =
  let doc =
    "Emit a self-contained C program for the plan (requires a \
     nonduplicate communication-free partition)."
  in
  let grid_arg =
    Arg.(value & flag
         & info [ "grid" ]
             ~doc:"Wrap the forall levels in explicit SPMD processor loops \
                   with the cyclic assignment.")
  in
  let openmp_arg =
    Arg.(value & flag
         & info [ "openmp" ]
             ~doc:"Annotate the outer forall with #pragma omp parallel for \
                   (compile with -fopenmp; race-free by Theorem 1).")
  in
  Cmd.v (Cmd.info "cgen" ~doc)
    Term.(const cgen_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ basis_arg $ procs_arg $ grid_arg $ openmp_arg)

(* allocate *)

let allocate_run level file strategy radius procs =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          let plan =
            Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest
          in
          print_string
            (Cf_report.Allocmap.render plan.Cf_pipeline.Pipeline.partition
               ~placement:(Cf_exec.Parexec.cyclic ~nprocs:procs)
               ~nprocs:procs)))

let allocate_cmd =
  let doc =
    "Print the per-processor data allocation map (which elements live      where) under cyclic block placement."
  in
  Cmd.v (Cmd.info "allocate" ~doc)
    Term.(const allocate_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ procs_arg)

(* distribute *)

let distribute_run level file strategy =
  setup_logs level;
  handle (fun () ->
      let src =
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let l = Cf_loop.Parse.imperfect src in
      Format.printf "@[<v>input (imperfect) nest:@,%a@]@." Cf_loop.Imperfect.pp
        l;
      match Cf_frontend.Distribution.distribute_checked l with
      | Error msg -> Format.printf "distribution rejected: %s@." msg
      | Ok nests ->
        Format.printf "distributed into %d perfect nest(s):@."
          (List.length nests);
        List.iteri
          (fun k nest ->
            Format.printf "@.===== nest %d =====@." (k + 1);
            Format.printf "@[<v>%a@]@." Cf_loop.Nest.pp nest;
            let plan = Cf_pipeline.Pipeline.plan ~strategy nest in
            Format.printf "%a@." Cf_pipeline.Pipeline.describe plan)
          nests)

let distribute_cmd =
  let doc =
    "Split an imperfect nest into perfect nests by loop distribution      (checked against the reference interpretation), then analyze each."
  in
  Cmd.v (Cmd.info "distribute" ~doc)
    Term.(const distribute_run $ logs_arg $ file_arg $ strategy_arg)

(* batch *)

module Service = Cf_service.Service

let batch_run level dir domains queue_depth cache_capacity no_cache timeout
    backend_opt =
  setup_logs level;
  backend_flag backend_opt @@ fun backend ->
  (* Execution is checked per plan only when --backend was given
     explicitly: the default batch output stays a pure planning report. *)
  let check_exec = backend_opt <> None in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Format.eprintf "error: %s is not a directory@." dir;
    1
  end
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".loop")
      |> List.sort String.compare
    in
    if files = [] then begin
      Format.eprintf "error: no .loop files in %s@." dir;
      1
    end
    else begin
      (* Parse everything up front: a malformed file is reported (with
         the parser's line/column diagnostic) and skipped, not fatal. *)
      let parse_failures = ref 0 in
      let nests =
        List.concat_map
          (fun f ->
            let path = Filename.concat dir f in
            match Cf_loop.Parse.program_of_file path with
            | [ nest ] -> [ (f, nest) ]
            | nests ->
              List.mapi
                (fun k nest -> (Printf.sprintf "%s#%d" f (k + 1), nest))
                nests
            | exception Cf_loop.Parse.Error msg ->
              incr parse_failures;
              Format.eprintf "%s: parse error: %s@." f msg;
              [])
          files
      in
      let svc =
        Service.create ?domains
          ?queue_depth
          ~cache:(if no_cache then None else Some cache_capacity)
          ()
      in
      let bad_outcomes = ref 0 in
      List.iter
        (fun strategy ->
          Format.printf "@.== strategy %s ==@."
            (Cf_core.Strategy.to_string strategy);
          let outcomes =
            Service.plan_many ~strategy ?timeout svc (List.map snd nests)
          in
          List.iter2
            (fun (name, _) outcome ->
              (match outcome with
              | Service.Done c ->
                let exec =
                  if check_exec then begin
                    let sim =
                      Cf_pipeline.Pipeline.simulate ~backend c.Service.plan
                    in
                    let ok =
                      Cf_exec.Parexec.ok sim.Cf_pipeline.Pipeline.report
                    in
                    if not ok then incr bad_outcomes;
                    if ok then "  exec=ok" else "  exec=FAIL"
                  end
                  else ""
                in
                Format.printf "%-24s %a  parallel=%d blocks=%d verified=%b%s@."
                  name Service.pp_outcome outcome
                  (Cf_pipeline.Pipeline.parallelism c.Service.plan)
                  (Cf_pipeline.Pipeline.block_count c.Service.plan)
                  (Cf_pipeline.Pipeline.verified c.Service.plan)
                  exec
              | _ ->
                incr bad_outcomes;
                Format.printf "%-24s %a@." name Service.pp_outcome outcome))
            nests outcomes)
        Cf_core.Strategy.all;
      Service.drain svc;
      Format.printf "@.%a@." Service.pp_stats (Service.stats svc);
      Service.shutdown svc;
      if !parse_failures > 0 || !bad_outcomes > 0 then 1 else 0
    end
  end

let batch_cmd =
  let doc =
    "Plan every .loop file in a directory across all four strategies \
     through the concurrent planning service (shared plan cache, worker \
     domains, built-in metrics)."
  in
  let dir_arg =
    Arg.(required & pos 0 (some dir) None
         & info [] ~docv:"DIR" ~doc:"Directory of loop-nest DSL files.")
  in
  let domains_arg =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains (default: the runtime's recommended \
                   domain count).")
  in
  let queue_arg =
    Arg.(value & opt (some int) None
         & info [ "queue" ] ~docv:"N"
             ~doc:"Submission-queue bound (default 64).")
  in
  let cache_capacity_arg =
    Arg.(value & opt int 1024
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Plan-cache capacity in entries (default 1024).")
  in
  let no_cache_arg =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable the canonical-form plan cache.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request deadline; requests still queued when it \
                   expires complete as timed out.")
  in
  let batch_backend_arg =
    Arg.(value & opt (some string) None
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Also execute each planned nest on the simulated machine \
                   with this statement-body engine ($(b,compiled) or \
                   $(b,interpreted)) and verify the result; execution \
                   failures count as bad outcomes.")
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const batch_run $ logs_arg $ dir_arg $ domains_arg $ queue_arg
          $ cache_capacity_arg $ no_cache_arg $ timeout_arg
          $ batch_backend_arg)

(* fuzz *)

let fuzz_run level seed count depth oracle_names corpus_dir json max_shrink
    unnormalized =
  setup_logs level;
  let unknown = ref [] in
  let oracles =
    match oracle_names with
    | None ->
      if unnormalized then
        (* The other oracles assume uniformly generated input and would
           drown the report in spurious failures on a raw unnormalized
           stream; an explicit --oracle list overrides this default. *)
        List.filter
          (fun o -> o.Cf_check.Oracle.name = "normalize-roundtrip")
          Cf_check.Oracle.all
      else Cf_check.Oracle.all
    | Some names ->
      String.split_on_char ',' names
      |> List.filter_map (fun n ->
             let n = String.trim n in
             if n = "" then None
             else
               match Cf_check.Oracle.find n with
               | Some o -> Some o
               | None ->
                 unknown := n :: !unknown;
                 None)
  in
  if !unknown <> [] then begin
    Format.eprintf "error: unknown oracle(s) %s (known: %s)@."
      (String.concat ", " (List.rev !unknown))
      (String.concat ", " Cf_check.Oracle.names);
    2
  end
  else if oracles = [] then begin
    Format.eprintf "error: no oracles selected@.";
    2
  end
  else if count < 1 then begin
    Format.eprintf "error: --count must be >= 1@.";
    2
  end
  else begin
    let params =
      match depth with
      | None -> Cf_check.Fuzz.mixed_depths
      | Some d when d >= 1 && d <= 3 ->
        fun _ -> Cf_check.Gen.default ~depth:d
      | Some d ->
        Format.eprintf "error: --depth must be 1, 2 or 3 (got %d)@." d;
        exit 2
    in
    let config =
      {
        Cf_check.Fuzz.seed;
        count;
        params;
        oracles;
        corpus_dir = Some corpus_dir;
        max_shrink_steps = max_shrink;
        unnormalized;
      }
    in
    let t0 = Unix.gettimeofday () in
    let stats = Cf_check.Fuzz.run config in
    let elapsed = Unix.gettimeofday () -. t0 in
    if json then
      print_endline
        (Cf_obs.Json.to_string (Cf_check.Fuzz.to_json config stats))
    else begin
      Format.printf
        "fuzz: seed %d, %d case(s) x %d oracle(s): %d passed, %d skipped, \
         %d counterexample(s) (%.0f cases/s)@."
        seed stats.Cf_check.Fuzz.cases (List.length oracles)
        stats.Cf_check.Fuzz.checks stats.Cf_check.Fuzz.skips
        (List.length stats.Cf_check.Fuzz.failures)
        (float_of_int stats.Cf_check.Fuzz.cases /. Float.max elapsed 1e-9);
      List.iter
        (fun (f : Cf_check.Fuzz.failure) ->
          Format.printf
            "@.counterexample: oracle %s, case %d (%d shrink step(s))@.%s@.%s"
            f.Cf_check.Fuzz.oracle f.Cf_check.Fuzz.case
            f.Cf_check.Fuzz.shrink_steps f.Cf_check.Fuzz.shrunk_detail
            (Cf_check.Corpus.render f.Cf_check.Fuzz.shrunk);
          match f.Cf_check.Fuzz.path with
          | Some p -> Format.printf "saved to %s@." p
          | None -> ())
        stats.Cf_check.Fuzz.failures
    end;
    if stats.Cf_check.Fuzz.failures <> [] then 2 else 0
  end

let fuzz_cmd =
  let doc =
    "Differential fuzzing: generate seeded random loop nests and \
     cross-check every layer of the system against its independent \
     oracle (planner vs verifier, closed-form coset index vs \
     materialized partition, parallel vs sequential execution, fault \
     recovery, canonical-form round-trips, C back end).  Failing nests \
     are minimized and persisted as replayable .loop regression tests; \
     exit code 2 signals a surviving counterexample."
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Random seed; each (seed, case) pair is replayable.")
  in
  let count_arg =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"K"
             ~doc:"Number of nests to generate (default 200).")
  in
  let depth_arg =
    Arg.(value & opt (some int) None
         & info [ "depth" ] ~docv:"D"
             ~doc:"Fix the nest depth to $(docv) (1-3); by default the \
                   run cycles through depths 1, 2 and 3.")
  in
  let oracle_arg =
    Arg.(value & opt (some string) None
         & info [ "oracle" ] ~docv:"NAME[,NAME...]"
             ~doc:(Printf.sprintf
                     "Comma-separated oracles to run (default all): %s."
                     (String.concat ", " Cf_check.Oracle.names)))
  in
  let corpus_arg =
    Arg.(value & opt string "test/corpus"
         & info [ "corpus-dir" ] ~docv:"PATH"
             ~doc:"Directory for minimized counterexamples (created on \
                   demand, written only on failure; default test/corpus, \
                   where dune runtest replays them).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let max_shrink_arg =
    Arg.(value & opt int 500
         & info [ "max-shrink-steps" ] ~docv:"N"
             ~doc:"Bound on greedy shrink steps per counterexample \
                   (default 500).")
  in
  let unnormalized_arg =
    Arg.(value & flag
         & info [ "unnormalized" ]
             ~doc:"Generate unnormalized nests (unrolled bodies, \
                   non-unit strides, shifted bounds, skewed reads) via \
                   a separate replayable stream.  Unless --oracle is \
                   given, only the normalize-roundtrip oracle runs: the \
                   others assume uniformly generated input.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const fuzz_run $ logs_arg $ seed_arg $ count_arg $ depth_arg
          $ oracle_arg $ corpus_arg $ json_arg $ max_shrink_arg
          $ unnormalized_arg)

(* demo *)

let demo_run level =
  setup_logs level;
  handle (fun () ->
      List.iter
        (fun k ->
          Format.printf "== %s: %s ==@." k.Cf_workloads.Workloads.name
            k.Cf_workloads.Workloads.description;
          List.iter
            (fun r ->
              Format.printf "  %a@." Cf_workloads.Workloads.pp_study_row r)
            (Cf_workloads.Workloads.study k);
          Format.printf "  %a@.@." Cf_baseline.Hyperplane.pp_comparison
            (Cf_workloads.Workloads.baseline_comparison k))
        Cf_workloads.Workloads.all)

let demo_cmd =
  let doc = "Run the strategy study over the built-in workload kernels." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo_run $ logs_arg)

(* serve / client *)

let tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "bad address %S: expected HOST:PORT" s))
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
      | _ -> Error (`Msg (Printf.sprintf "bad port in %S" s)))
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let tenant_conv =
  let parse s =
    match Cf_server.Admission.tenant_of_spec s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (t : Cf_server.Admission.tenant) =
    Format.fprintf ppf "%s" t.name
  in
  Arg.conv (parse, print)

let serve_run level socket tcp journal domains queue cache fsync_every
    max_frame read_timeout capacity shed_start tenants tenants_file =
  setup_logs level;
  handle (fun () ->
      if socket = None && tcp = None then
        invalid_arg "serve: pass --socket and/or --tcp";
      let config =
        {
          Cf_server.Server.default_config with
          unix_socket = socket;
          tcp;
          journal;
          domains;
          queue_depth = queue;
          cache = (if cache = 0 then None else Some cache);
          fsync_every;
          max_frame;
          read_timeout;
          admit_capacity = capacity;
          shed_start;
          tenants;
          tenants_file;
        }
      in
      let server = Cf_server.Server.start config in
      (match journal with
      | Some path ->
        let r = Cf_server.Server.replay_report server in
        Format.printf
          "journal %s: replayed %d entries (%d warmed, %d bad), skipped %d \
           tail byte(s)@."
          path r.entries r.warmed r.bad_entries r.skipped_bytes
      | None -> ());
      Option.iter (fun p -> Format.printf "listening on unix:%s@." p) socket;
      Option.iter
        (fun (h, _) ->
          Format.printf "listening on tcp:%s:%d@." h
            (Option.value ~default:0 (Cf_server.Server.port server)))
        tcp;
      Format.printf "ready@.";
      (* Keep stdout line-buffered progress visible to process managers
         (the CI smoke test waits for "ready"). *)
      let stop_requested = ref false and reload_requested = ref false in
      let request_stop _ = stop_requested := true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      (* SIGHUP = hot tenant-table reload; performed on the main loop,
         not in the handler (signal context can't take locks safely). *)
      (try
         Sys.set_signal Sys.sighup
           (Sys.Signal_handle (fun _ -> reload_requested := true))
       with Invalid_argument _ -> ());
      while not !stop_requested do
        if !reload_requested then begin
          reload_requested := false;
          match Cf_server.Server.reload_tenants server with
          | Ok n -> Format.printf "reloaded %d tenant spec(s)@." n
          | Error msg -> Format.printf "tenant reload failed: %s@." msg
        end;
        try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Format.printf "shutting down@.";
      Cf_server.Server.stop server)

let serve_cmd =
  let doc = "Run the crash-safe planning server." in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")
  in
  let tcp =
    Arg.(
      value
      & opt (some tcp_conv) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on TCP (port 0 = kernel-assigned).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Append cache-miss plans to this journal and replay it on boot, \
             so cache warmth survives crashes.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N" ~doc:"Submission queue depth.")
  in
  let cache =
    Arg.(
      value & opt int 1024
      & info [ "cache" ] ~docv:"N" ~doc:"Plan cache capacity (0 disables).")
  in
  let fsync_every =
    Arg.(
      value & opt int 8
      & info [ "fsync-every" ] ~docv:"N"
          ~doc:"Batch journal fsyncs: one sync per N appends.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Cf_server.Frame.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Largest accepted frame.")
  in
  let read_timeout =
    Arg.(
      value & opt float 30.
      & info [ "read-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-connection read timeout.")
  in
  let capacity =
    Arg.(
      value & opt int 8
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Outstanding admitted plan requests before load-shedding.")
  in
  let shed_start =
    Arg.(
      value & opt float 0.5
      & info [ "shed-start" ] ~docv:"OCC"
          ~doc:"Occupancy (0..1) where priority shedding begins.")
  in
  let tenants =
    Arg.(
      value
      & opt_all tenant_conv []
      & info [ "tenant" ] ~docv:"SPEC"
          ~doc:
            "Tenant limits, e.g. gold:priority=9,weight=4,rate=100,burst=20 \
             (repeatable).")
  in
  let tenants_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "tenants-file" ] ~docv:"PATH"
          ~doc:
            "Read tenant specs (one per line, # comments) from $(docv); \
             re-read on the $(b,reload) protocol op or SIGHUP without \
             dropping live connections.  Overrides --tenant.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ logs_arg $ socket $ tcp $ journal $ domains $ queue
      $ cache $ fsync_every $ max_frame $ read_timeout $ capacity $ shed_start
      $ tenants $ tenants_file)

let client_run level socket tcp tenant op strategy radius timeout serve count
    files =
  setup_logs level;
  let connect () =
    match (socket, tcp) with
    | Some path, _ -> Cf_server.Client.connect_unix ~tenant path
    | None, Some (host, port) -> Cf_server.Client.connect_tcp ~tenant host port
    | None, None -> Error "pass --socket or --tcp"
  in
  handle (fun () ->
      match connect () with
      | Error msg -> failwith msg
      | Ok client ->
        Fun.protect
          ~finally:(fun () -> Cf_server.Client.close client)
          (fun () ->
            let failures = ref 0 in
            let show = function
              | Ok reply ->
                Format.printf "%s@." (Cf_obs.Json.to_string reply);
                if not (Cf_server.Protocol.is_ok reply) then incr failures
              | Error msg ->
                Format.eprintf "error: %s@." msg;
                incr failures
            in
            (match op with
            | "stats" -> show (Cf_server.Client.stats client)
            | "health" -> show (Cf_server.Client.health client)
            | "reload" -> show (Cf_server.Client.reload client)
            | "plan" ->
              if files = [] then invalid_arg "client: no nest files given";
              List.iter
                (fun file ->
                  List.iter
                    (fun nest ->
                      let src =
                        Format.asprintf "@[<v>%a@]" Cf_loop.Nest.pp nest
                      in
                      for _ = 1 to count do
                        show
                          (Cf_server.Client.plan ~serve ~strategy
                             ?search_radius:radius ?timeout client src)
                      done)
                    (load file))
                files
            | op -> invalid_arg (Printf.sprintf "client: unknown op %S" op));
            if !failures > 0 then
              failwith
                (Printf.sprintf "%d request(s) did not complete ok" !failures)))

let client_cmd =
  let doc = "Send requests to a running planning server." in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Dial a Unix-domain socket.")
  in
  let tcp =
    Arg.(
      value
      & opt (some tcp_conv) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Dial TCP.")
  in
  let tenant =
    Arg.(
      value & opt string "default"
      & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant identity for admission.")
  in
  let op =
    Arg.(
      value & opt string "plan"
      & info [ "op" ] ~docv:"OP"
          ~doc:"One of plan, stats, health, reload.")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv Cf_core.Strategy.Nonduplicate
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"Planning strategy.")
  in
  let radius =
    Arg.(
      value
      & opt (some int) None
      & info [ "radius" ] ~docv:"N" ~doc:"Partitioning-space search radius.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-request deadline.")
  in
  let serve =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Use plan_serve: degrade theorem-rejected nests to the fallback \
             tier.")
  in
  let count =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"N" ~doc:"Repeat each plan request N times.")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Nest DSL files.")
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const client_run $ logs_arg $ socket $ tcp $ tenant $ op $ strategy
      $ radius $ timeout $ serve $ count $ files)

let main =
  let doc = "communication-free data allocation for nested loops" in
  let info = Cmd.info "cfalloc" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ analyze_cmd; normalize_cmd; transform_cmd; simulate_cmd; trace_cmd;
      trace_check_cmd; figures_cmd; compare_cmd; advise_cmd; allocate_cmd;
      cgen_cmd; distribute_cmd; batch_cmd; bench_diff_cmd; fuzz_cmd;
      serve_cmd; client_cmd; demo_cmd ]

let () = exit (Cmd.eval' main)
