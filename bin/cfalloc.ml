(* cfalloc - communication-free data allocation driver.

   Subcommands: analyze, transform, simulate, figures, compare, advise,
   cgen, demo.
   Loop nests are read from DSL files (see examples/loops/). *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let strategy_conv =
  let parse s =
    match
      List.find_opt
        (fun st -> Cf_core.Strategy.to_string st = s)
        Cf_core.Strategy.all
    with
    | Some st -> Ok st
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown strategy %S (expected one of: %s)" s
              (String.concat ", "
                 (List.map Cf_core.Strategy.to_string Cf_core.Strategy.all))))
  in
  let print ppf s = Format.fprintf ppf "%s" (Cf_core.Strategy.to_string s) in
  Arg.conv (parse, print)

let basis_conv =
  (* "1,1,0;-1,0,1" -> [ [|1;1;0|]; [|-1;0;1|] ] *)
  let parse s =
    match
      String.split_on_char ';' s
      |> List.map (fun row ->
             String.split_on_char ',' row
             |> List.map (fun x ->
                    let x = String.trim x in
                    if x = "" then failwith "empty entry" else int_of_string x)
             |> Array.of_list)
    with
    | exception _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad basis %S: expected integer rows like \"1,1,0;-1,0,1\"" s))
    | [] | [ [||] ] ->
      Error (`Msg (Printf.sprintf "bad basis %S: no rows given" s))
    | first :: rest as rows ->
      let width = Array.length first in
      (match
         List.find_opt (fun r -> Array.length r <> width) rest
       with
      | Some bad ->
        Error
          (`Msg
             (Printf.sprintf
                "bad basis %S: ragged rows (row of length %d after a row of \
                 length %d)"
                s (Array.length bad) width))
      | None -> Ok rows)
  in
  let print ppf rows =
    Format.fprintf ppf "%s"
      (String.concat ";"
         (List.map
            (fun r ->
              String.concat ","
                (Array.to_list (Array.map string_of_int r)))
            rows))
  in
  Arg.conv (parse, print)

let file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"Loop-nest DSL file.")

let strategy_arg =
  Arg.(value
       & opt strategy_conv Cf_core.Strategy.Nonduplicate
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Partitioning strategy: nonduplicate, duplicate, \
                 min-nonduplicate or min-duplicate.")

let radius_arg =
  Arg.(value & opt (some int) None
       & info [ "radius" ] ~docv:"N"
           ~doc:"Babai search radius for dependence witnesses.")

let basis_arg =
  Arg.(value & opt (some basis_conv) None
       & info [ "basis" ] ~docv:"ROWS"
           ~doc:"Override the Ker(Psi) basis, e.g. \"1,1,0;-1,0,1\".")

let procs_arg =
  Arg.(value & opt int 4
       & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processors.")

let logs_arg = Logs_cli.level ()

let load file = Cf_loop.Parse.program_of_file file

(* Apply an action to every nest of the program, with a banner when the
   file holds more than one. *)
let each_nest file f =
  let nests = load file in
  let many = List.length nests > 1 in
  List.iteri
    (fun k nest ->
      if many then Format.printf "@.===== nest %d =====@." (k + 1);
      f nest)
    nests

let handle f =
  try f (); 0
  with
  | Cf_loop.Parse.Error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    1

(* analyze *)

let analyze_run level file strategy radius =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          Format.printf "@[<v>input loop:@,%a@]@." Cf_loop.Nest.pp nest;
          let issues = Cf_pipeline.Diagnose.check nest in
          List.iter
            (fun i -> Format.printf "%a@." Cf_pipeline.Diagnose.pp_issue i)
            issues;
          if not (Cf_pipeline.Diagnose.usable issues) then
            Format.printf "analysis skipped: the nest violates the model@."
          else begin
            let plan =
              Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest
            in
            Format.printf "%a@." Cf_pipeline.Pipeline.describe plan;
            Format.printf "communication-free verified: %b@."
              (Cf_pipeline.Pipeline.verified plan)
          end))

let analyze_cmd =
  let doc = "Analyze a loop nest and print its communication-free plan." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const analyze_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg)

(* transform *)

let transform_run level file strategy radius basis procs =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
      let plan =
        Cf_pipeline.Pipeline.plan ~strategy ?basis ?search_radius:radius nest
      in
      Format.printf "%a@." Cf_transform.Parloop.pp plan.Cf_pipeline.Pipeline.parloop;
      let pl = plan.Cf_pipeline.Pipeline.parloop in
      if pl.Cf_transform.Parloop.n_forall > 0 then begin
        let grid = Cf_exec.Assign.grid_for pl ~procs in
        Format.printf "@.processor-assigned form (grid %s):@."
          (String.concat "x"
             (Array.to_list (Array.map string_of_int grid)));
        Format.printf "%a@." (Cf_transform.Parloop.pp_assigned ~grid) pl
      end))

let transform_cmd =
  let doc = "Emit the transformed forall nest (and its assigned form)." in
  Cmd.v (Cmd.info "transform" ~doc)
    Term.(const transform_run $ logs_arg $ file_arg $ strategy_arg
          $ radius_arg $ basis_arg $ procs_arg)

(* simulate *)

(* Fault-injected simulation: plan as usual, then run the crash-tolerant
   indexed engine on a machine carrying the fault plan.  The recovery
   must reproduce the fault-free result bit for bit, which pp_report's
   "results: match sequential" line certifies. *)
let fault_simulate ~strategy ~radius ~procs ~spec nest =
  let plan = Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest in
  let fplan = Cf_fault.Fault.make ~procs spec in
  let machine =
    Cf_machine.Machine.create ~faults:fplan
      (Cf_machine.Topology.linear procs)
      Cf_machine.Cost.transputer
  in
  let coset = Cf_core.Coset.make nest plan.Cf_pipeline.Pipeline.space in
  (* Distribution is charged so the host's messages actually traverse
     the faulty links (and a PE dead on arrival is unmasked by its first
     message, not first iteration). *)
  let report =
    Cf_exec.Parexec.execute_indexed ?exact:plan.Cf_pipeline.Pipeline.exact
      ~charge_distribution:true ~machine
      ~placement:(Cf_exec.Parexec.cyclic ~nprocs:procs)
      ~strategy coset
  in
  Format.printf "%a@." Cf_fault.Fault.pp fplan;
  Format.printf "@[<v>%a@]@." Cf_exec.Parexec.pp_report report;
  Format.printf "link: %d retransmission(s) (%d dropped, %d corrupted)@."
    (Cf_machine.Machine.retries machine)
    (Cf_machine.Machine.dropped_messages machine)
    (Cf_machine.Machine.corrupted_messages machine);
  Format.printf "makespan: %.6fs@." (Cf_machine.Machine.makespan machine);
  Format.printf "recovered output identical: %b@."
    (Cf_exec.Parexec.ok report)

let simulate_run level file strategy radius procs fault_seed kill_pe kill_after
    =
  setup_logs level;
  (* The fault flags are parsed by hand so a malformed value yields a
     clear diagnostic and exit code 2 (usage error), distinct from the
     planner-failure exit code 1. *)
  let int_flag name v k =
    match v with
    | None -> k None
    | Some s -> (
      match int_of_string_opt s with
      | Some n -> k (Some n)
      | None ->
        Format.eprintf "error: --%s expects an integer, got %S@." name s;
        2)
  in
  int_flag "fault-seed" fault_seed @@ fun seed ->
  int_flag "kill-pe" kill_pe @@ fun kill_pe ->
  int_flag "kill-after" kill_after @@ fun kill_after ->
  match (seed, kill_pe, kill_after) with
  | None, None, None ->
    handle (fun () ->
        each_nest file (fun nest ->
            let plan =
              Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest
            in
            let sim = Cf_pipeline.Pipeline.simulate ~procs plan in
            Format.printf "@[<v>%a@]@." Cf_exec.Parexec.pp_report
              sim.Cf_pipeline.Pipeline.report;
            Format.printf "balance: %a@." Cf_exec.Balance.pp
              sim.Cf_pipeline.Pipeline.balance;
            Format.printf "makespan: %.6fs@." sim.Cf_pipeline.Pipeline.makespan))
  | _ when kill_after <> None && kill_pe = None ->
    Format.eprintf "error: --kill-after requires --kill-pe@.";
    2
  | _ when (match kill_pe with Some pe -> pe < 0 || pe >= procs | None -> false)
    ->
    Format.eprintf "error: --kill-pe %d is outside the machine (0..%d)@."
      (Option.get kill_pe) (procs - 1);
    2
  | _ when (match kill_after with Some k -> k < 0 | None -> false) ->
    Format.eprintf "error: --kill-after must be >= 0@.";
    2
  | _ ->
    let spec =
      {
        Cf_fault.Fault.none with
        seed = Option.value seed ~default:0;
        kills =
          (match kill_pe with
          | Some pe -> [ (pe, Option.value kill_after ~default:0) ]
          | None -> []);
        (* A seed without explicit kills draws a random schedule; with
           --kill-pe alone the run is purely deterministic. *)
        crash_rate = (if seed = None then 0. else 0.25);
        crash_after_max = (if seed = None then 0 else 8);
        drop_rate = (if seed = None then 0. else 0.05);
        corrupt_rate = (if seed = None then 0. else 0.02);
      }
    in
    handle (fun () ->
        each_nest file (fault_simulate ~strategy ~radius ~procs ~spec))

let simulate_cmd =
  let doc = "Execute the plan on the simulated multicomputer and verify it." in
  let fault_seed_arg =
    Arg.(value & opt (some string) None
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Enable seeded fault injection: random PE crashes and \
                   host-link drop/corruption drawn deterministically from \
                   $(docv); the run recovers and must reproduce the \
                   fault-free result.")
  in
  let kill_pe_arg =
    Arg.(value & opt (some string) None
         & info [ "kill-pe" ] ~docv:"PE"
             ~doc:"Deterministically crash processor $(docv) (combine with \
                   --kill-after).")
  in
  let kill_after_arg =
    Arg.(value & opt (some string) None
         & info [ "kill-after" ] ~docv:"K"
             ~doc:"Iterations the killed PE completes before dying (default \
                   0: dead during distribution); requires --kill-pe.")
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const simulate_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ procs_arg $ fault_seed_arg $ kill_pe_arg $ kill_after_arg)

(* figures *)

let figures_run level file strategy radius svg_dir =
  setup_logs level;
  handle (fun () ->
      let nest_index = ref 0 in
      each_nest file (fun nest ->
      incr nest_index;
      let plan = Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest in
      let partition = plan.Cf_pipeline.Pipeline.partition in
      List.iter
        (fun a ->
          print_string (Cf_report.Figures.data_space nest a);
          print_string (Cf_report.Figures.data_partition nest partition a);
          print_string (Cf_report.Figures.reference_graph nest a);
          print_newline ())
        (Cf_loop.Nest.arrays nest);
      print_string (Cf_report.Figures.iteration_partition partition);
      match svg_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let save name contents =
          let path =
            Filename.concat dir
              (Printf.sprintf "nest%d-%s.svg" !nest_index name)
          in
          let oc = open_out path in
          output_string oc contents;
          close_out oc;
          Format.printf "wrote %s@." path
        in
        (try save "iterations" (Cf_report.Svg.iteration_partition partition)
         with Invalid_argument _ -> ());
        List.iter
          (fun a ->
            try save ("data-" ^ a) (Cf_report.Svg.data_partition nest partition a)
            with Invalid_argument _ -> ())
          (Cf_loop.Nest.arrays nest)))

let figures_cmd =
  let doc = "Render data/iteration partitions and reference graphs." in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"DIR"
             ~doc:"Also write SVG renderings of the 2-D figures to $(docv).")
  in
  Cmd.v (Cmd.info "figures" ~doc)
    Term.(const figures_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ svg_arg)

(* compare *)

let compare_run level file =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
      let exact = Cf_dep.Exact.analyze nest in
      Format.printf "%-18s %-5s %-10s %-8s@." "strategy" "dim" "parallel"
        "blocks";
      List.iter
        (fun strategy ->
          let psi =
            Cf_core.Strategy.partitioning_space ~exact strategy nest
          in
          let p = Cf_core.Iter_partition.make nest psi in
          Format.printf "%-18s %-5d %-10d %-8d@."
            (Cf_core.Strategy.to_string strategy)
            (Cf_linalg.Subspace.dim psi)
            (Cf_core.Strategy.parallelism_degree psi)
            (Cf_core.Iter_partition.block_count p))
        Cf_core.Strategy.all;
      Format.printf "%a@." Cf_baseline.Hyperplane.pp_comparison
        (Cf_baseline.Hyperplane.compare_on ~name:"input" nest)))

let compare_cmd =
  let doc =
    "Compare the four strategies and the R&S hyperplane baseline."
  in
  Cmd.v (Cmd.info "compare" ~doc) Term.(const compare_run $ logs_arg $ file_arg)

(* advise *)

let advise_run level file procs =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          Format.printf
            "duplication candidates for p = %d (best first):@." procs;
          List.iteri
            (fun k c ->
              Format.printf "  %d. %a@." (k + 1) Cf_exec.Advisor.pp_candidate c)
            (Cf_exec.Advisor.candidates ~procs nest)))

let advise_cmd =
  let doc =
    "Rank array-duplication choices by estimated execution time \
     (Section IV's which-array-to-replicate question)."
  in
  Cmd.v (Cmd.info "advise" ~doc)
    Term.(const advise_run $ logs_arg $ file_arg $ procs_arg)

(* cgen *)

let cgen_run level file strategy radius basis procs use_grid openmp =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          let plan =
            Cf_pipeline.Pipeline.plan ~strategy ?basis ?search_radius:radius
              nest
          in
          let pl = plan.Cf_pipeline.Pipeline.parloop in
          let grid =
            if use_grid && pl.Cf_transform.Parloop.n_forall > 0 then
              Some (Cf_exec.Assign.grid_for pl ~procs)
            else None
          in
          print_string (Cf_cgen.Cgen.emit ?grid ~openmp pl)))

let cgen_cmd =
  let doc =
    "Emit a self-contained C program for the plan (requires a \
     nonduplicate communication-free partition)."
  in
  let grid_arg =
    Arg.(value & flag
         & info [ "grid" ]
             ~doc:"Wrap the forall levels in explicit SPMD processor loops \
                   with the cyclic assignment.")
  in
  let openmp_arg =
    Arg.(value & flag
         & info [ "openmp" ]
             ~doc:"Annotate the outer forall with #pragma omp parallel for \
                   (compile with -fopenmp; race-free by Theorem 1).")
  in
  Cmd.v (Cmd.info "cgen" ~doc)
    Term.(const cgen_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ basis_arg $ procs_arg $ grid_arg $ openmp_arg)

(* allocate *)

let allocate_run level file strategy radius procs =
  setup_logs level;
  handle (fun () ->
      each_nest file (fun nest ->
          let plan =
            Cf_pipeline.Pipeline.plan ~strategy ?search_radius:radius nest
          in
          print_string
            (Cf_report.Allocmap.render plan.Cf_pipeline.Pipeline.partition
               ~placement:(Cf_exec.Parexec.cyclic ~nprocs:procs)
               ~nprocs:procs)))

let allocate_cmd =
  let doc =
    "Print the per-processor data allocation map (which elements live      where) under cyclic block placement."
  in
  Cmd.v (Cmd.info "allocate" ~doc)
    Term.(const allocate_run $ logs_arg $ file_arg $ strategy_arg $ radius_arg
          $ procs_arg)

(* distribute *)

let distribute_run level file strategy =
  setup_logs level;
  handle (fun () ->
      let src =
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let l = Cf_loop.Parse.imperfect src in
      Format.printf "@[<v>input (imperfect) nest:@,%a@]@." Cf_loop.Imperfect.pp
        l;
      match Cf_frontend.Distribution.distribute_checked l with
      | Error msg -> Format.printf "distribution rejected: %s@." msg
      | Ok nests ->
        Format.printf "distributed into %d perfect nest(s):@."
          (List.length nests);
        List.iteri
          (fun k nest ->
            Format.printf "@.===== nest %d =====@." (k + 1);
            Format.printf "@[<v>%a@]@." Cf_loop.Nest.pp nest;
            let plan = Cf_pipeline.Pipeline.plan ~strategy nest in
            Format.printf "%a@." Cf_pipeline.Pipeline.describe plan)
          nests)

let distribute_cmd =
  let doc =
    "Split an imperfect nest into perfect nests by loop distribution      (checked against the reference interpretation), then analyze each."
  in
  Cmd.v (Cmd.info "distribute" ~doc)
    Term.(const distribute_run $ logs_arg $ file_arg $ strategy_arg)

(* batch *)

module Service = Cf_service.Service

let batch_run level dir domains queue_depth cache_capacity no_cache timeout =
  setup_logs level;
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Format.eprintf "error: %s is not a directory@." dir;
    1
  end
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".loop")
      |> List.sort String.compare
    in
    if files = [] then begin
      Format.eprintf "error: no .loop files in %s@." dir;
      1
    end
    else begin
      (* Parse everything up front: a malformed file is reported (with
         the parser's line/column diagnostic) and skipped, not fatal. *)
      let parse_failures = ref 0 in
      let nests =
        List.concat_map
          (fun f ->
            let path = Filename.concat dir f in
            match Cf_loop.Parse.program_of_file path with
            | [ nest ] -> [ (f, nest) ]
            | nests ->
              List.mapi
                (fun k nest -> (Printf.sprintf "%s#%d" f (k + 1), nest))
                nests
            | exception Cf_loop.Parse.Error msg ->
              incr parse_failures;
              Format.eprintf "%s: parse error: %s@." f msg;
              [])
          files
      in
      let svc =
        Service.create ?domains
          ?queue_depth
          ~cache:(if no_cache then None else Some cache_capacity)
          ()
      in
      let bad_outcomes = ref 0 in
      List.iter
        (fun strategy ->
          Format.printf "@.== strategy %s ==@."
            (Cf_core.Strategy.to_string strategy);
          let outcomes =
            Service.plan_many ~strategy ?timeout svc (List.map snd nests)
          in
          List.iter2
            (fun (name, _) outcome ->
              (match outcome with
              | Service.Done c ->
                Format.printf "%-24s %a  parallel=%d blocks=%d verified=%b@."
                  name Service.pp_outcome outcome
                  (Cf_pipeline.Pipeline.parallelism c.Service.plan)
                  (Cf_pipeline.Pipeline.block_count c.Service.plan)
                  (Cf_pipeline.Pipeline.verified c.Service.plan)
              | _ ->
                incr bad_outcomes;
                Format.printf "%-24s %a@." name Service.pp_outcome outcome))
            nests outcomes)
        Cf_core.Strategy.all;
      Service.drain svc;
      Format.printf "@.%a@." Service.pp_stats (Service.stats svc);
      Service.shutdown svc;
      if !parse_failures > 0 || !bad_outcomes > 0 then 1 else 0
    end
  end

let batch_cmd =
  let doc =
    "Plan every .loop file in a directory across all four strategies \
     through the concurrent planning service (shared plan cache, worker \
     domains, built-in metrics)."
  in
  let dir_arg =
    Arg.(required & pos 0 (some dir) None
         & info [] ~docv:"DIR" ~doc:"Directory of loop-nest DSL files.")
  in
  let domains_arg =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains (default: the runtime's recommended \
                   domain count).")
  in
  let queue_arg =
    Arg.(value & opt (some int) None
         & info [ "queue" ] ~docv:"N"
             ~doc:"Submission-queue bound (default 64).")
  in
  let cache_capacity_arg =
    Arg.(value & opt int 1024
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Plan-cache capacity in entries (default 1024).")
  in
  let no_cache_arg =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable the canonical-form plan cache.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request deadline; requests still queued when it \
                   expires complete as timed out.")
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const batch_run $ logs_arg $ dir_arg $ domains_arg $ queue_arg
          $ cache_capacity_arg $ no_cache_arg $ timeout_arg)

(* demo *)

let demo_run level =
  setup_logs level;
  handle (fun () ->
      List.iter
        (fun k ->
          Format.printf "== %s: %s ==@." k.Cf_workloads.Workloads.name
            k.Cf_workloads.Workloads.description;
          List.iter
            (fun r ->
              Format.printf "  %a@." Cf_workloads.Workloads.pp_study_row r)
            (Cf_workloads.Workloads.study k);
          Format.printf "  %a@.@." Cf_baseline.Hyperplane.pp_comparison
            (Cf_workloads.Workloads.baseline_comparison k))
        Cf_workloads.Workloads.all)

let demo_cmd =
  let doc = "Run the strategy study over the built-in workload kernels." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo_run $ logs_arg)

let main =
  let doc = "communication-free data allocation for nested loops" in
  let info = Cmd.info "cfalloc" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ analyze_cmd; transform_cmd; simulate_cmd; figures_cmd; compare_cmd;
      advise_cmd; allocate_cmd; cgen_cmd; distribute_cmd; batch_cmd;
      demo_cmd ]

let () = exit (Cmd.eval' main)
